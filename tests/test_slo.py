"""SLO engine: spec validation, burn-rate math, and the partition drill.

Two tiers:

* **unit (obs)** — :class:`SloSpec` / :class:`BurnRatePolicy`
  validation, the objective→bad-fraction reduction for all three kinds,
  and the alert state machine driven synthetically: fire requires both
  windows, escalation ticket→page, hysteresis holds through an
  oscillating burn, clear needs ``clear_holds`` consecutive calm
  evaluations.
* **integration (fleet+sched)** — the monitored partition drill of
  :func:`repro.experiments.run_fleet_slo`: a mid-run shard partition
  produces a windowed p99 spike, a burn-rate alert that fires during
  the partition era and clears after heal+rebalance without flapping,
  an SLO report showing the budget that was consumed, and — with
  monitoring off — bit-identical predictions and zero monitor
  footprint.  Everything runs on the simulated clock, so two runs
  produce the same alert story.
"""

from __future__ import annotations

import pytest

from repro.observability import (
    BurnRatePolicy,
    MetricsRegistry,
    SloMonitor,
    SloSpec,
    Tracer,
    default_fleet_slos,
)
from repro.runtime import SessionConfig


# ----------------------------------------------------------------------
# Unit tier: specs and policy
# ----------------------------------------------------------------------
@pytest.mark.obs
class TestSloSpecValidation:
    def test_quantile_spec_budget_and_objective(self):
        spec = SloSpec(
            name="p99", kind="quantile", metric="wait_ms", threshold=50.0
        )
        assert spec.budget_fraction == pytest.approx(0.01)
        assert spec.objective() == "p99(wait_ms) <= 50"

    def test_ratio_and_availability_budgets(self):
        ratio = SloSpec(
            name="err", kind="ratio", metric="bad", total="all", threshold=0.05
        )
        avail = SloSpec(
            name="up", kind="availability", metric="ok", total="all",
            threshold=0.99,
        )
        assert ratio.budget_fraction == pytest.approx(0.05)
        assert avail.budget_fraction == pytest.approx(0.01)
        assert ">=" in avail.objective() and "<=" in ratio.objective()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", kind="quantile", metric="m", threshold=1.0),
            dict(name="x", kind="median", metric="m", threshold=1.0),
            dict(name="x", kind="quantile", metric="m", threshold=0.0),
            dict(name="x", kind="quantile", metric="m", threshold=1.0, quantile=100.0),
            dict(name="x", kind="ratio", metric="m", total="t", threshold=1.5),
            dict(name="x", kind="ratio", metric="m", threshold=0.1),  # no total
            dict(name="x", kind="availability", metric="m", total="t", threshold=0.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(**kwargs)

    def test_policy_validation_and_severity(self):
        pol = BurnRatePolicy(page_burn=10.0, ticket_burn=2.0)
        assert pol.severity_for(10.0) == "page"
        assert pol.severity_for(2.0) == "ticket"
        assert pol.severity_for(1.9) is None
        with pytest.raises(ValueError):
            BurnRatePolicy(fast_window_ms=500.0, slow_window_ms=100.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(page_burn=1.0, ticket_burn=2.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(clear_holds=0)

    def test_default_fleet_slos_shapes(self):
        specs = default_fleet_slos()
        assert [s.kind for s in specs] == ["quantile", "ratio", "availability"]
        assert {s.name for s in specs} == {
            "queue-wait-p99", "fallback-rate", "shard-availability"
        }

    def test_monitor_rejects_empty_and_duplicate_specs(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            SloMonitor(reg, [], clock=lambda: 0.0)
        spec = SloSpec(name="a", kind="quantile", metric="m", threshold=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloMonitor(reg, [spec, spec], clock=lambda: 0.0)


# ----------------------------------------------------------------------
# Unit tier: the alert state machine, driven synthetically
# ----------------------------------------------------------------------
def _quantile_monitor(threshold=10.0, **policy_kwargs):
    """A monitor over one p99 objective with a controllable clock."""
    reg = MetricsRegistry()
    t = {"now": 0.0}
    policy = BurnRatePolicy(
        fast_window_ms=100.0, slow_window_ms=400.0, **policy_kwargs
    )
    mon = SloMonitor(
        reg,
        [SloSpec(name="p99", kind="quantile", metric="wait", threshold=threshold)],
        clock=lambda: t["now"],
        policy=policy,
    )
    return reg, mon, t


@pytest.mark.obs
class TestAlertLifecycle:
    def test_fire_requires_both_windows(self):
        reg, mon, t = _quantile_monitor()
        h = reg.histogram("wait")
        # Bad observations only inside the fast window: the slow window
        # also contains them here, so this *does* fire; the converse —
        # old badness outside the fast window — must not.
        t["now"] = 350.0
        h.observe(100.0)  # way over threshold
        events = mon.evaluate(350.0)
        assert [e["transition"] for e in events] == ["fire"]
        # Fresh monitor: badness far in the past of the fast window.
        reg2, mon2, t2 = _quantile_monitor()
        h2 = reg2.histogram("wait")
        t2["now"] = 10.0
        h2.observe(100.0)
        t2["now"] = 390.0
        h2.observe(1.0)  # recent traffic is fine
        events = mon2.evaluate(390.0)
        assert events == []  # fast window clean -> no alert

    def test_page_fires_above_page_burn(self):
        reg, mon, t = _quantile_monitor()
        h = reg.histogram("wait")
        t["now"] = 50.0
        h.observe(100.0)  # 1 of 1 over threshold: burn = 1/0.01 = 100x
        (event,) = mon.evaluate(50.0)
        assert event["severity"] == "page"
        assert event["fast_burn"] == pytest.approx(100.0)

    def test_escalate_ticket_to_page(self):
        reg, mon, t = _quantile_monitor()
        h = reg.histogram("wait")
        # 3% bad of 100 -> burn 3x: ticket.
        t["now"] = 50.0
        for i in range(100):
            h.observe(100.0 if i < 3 else 1.0)
        (event,) = mon.evaluate(50.0)
        assert event["transition"] == "fire" and event["severity"] == "ticket"
        # More badness -> burn over 10x: escalate to page.
        for _ in range(20):
            h.observe(100.0)
        (event,) = mon.evaluate(60.0)
        assert event["transition"] == "escalate" and event["severity"] == "page"

    def test_clear_needs_consecutive_holds(self):
        reg, mon, t = _quantile_monitor(clear_holds=2)
        h = reg.histogram("wait")
        t["now"] = 50.0
        h.observe(100.0)
        assert mon.evaluate(50.0)  # fire
        # One calm evaluation is not enough (windows slide past the spike).
        assert mon.evaluate(500.0) == []
        # Second consecutive calm evaluation clears.
        (event,) = mon.evaluate(510.0)
        assert event["transition"] == "clear"
        # History rows show the firing state held until the clear.
        states = [row["state"] for row in mon.history]
        assert states == ["firing", "firing", "ok"]

    def test_oscillating_burn_does_not_flap(self):
        reg, mon, t = _quantile_monitor(clear_holds=2)
        h = reg.histogram("wait")
        clock = 50.0
        t["now"] = clock
        h.observe(100.0)
        mon.evaluate(clock)  # fire
        # Alternate calm and bad evaluations: the clear streak resets
        # every time the burn comes back, so no clear and no re-fire.
        for step in range(6):
            clock += 450.0  # slide the slow window past old badness
            t["now"] = clock
            if step % 2 == 1:
                h.observe(100.0)  # badness returns
            events = mon.evaluate(clock)
            assert events == []
        transitions = [e["transition"] for e in mon.events]
        assert transitions == ["fire"]  # exactly one, never cleared

    def test_alert_spans_reach_recorder(self):
        reg = MetricsRegistry()
        tracer = Tracer()
        t = {"now": 50.0}
        mon = SloMonitor(
            reg,
            [SloSpec(name="p99", kind="quantile", metric="wait", threshold=10.0)],
            clock=lambda: t["now"],
            policy=BurnRatePolicy(fast_window_ms=100.0, slow_window_ms=400.0),
            recorder=tracer,
        )
        reg.histogram("wait").observe(100.0)
        mon.evaluate(50.0)
        spans = [s for s in tracer.spans() if s.name == "slo.alert"]
        assert len(spans) == 1
        assert spans[0].attrs["transition"] == "fire"

    def test_grouped_spec_discovers_new_series_on_sync(self):
        reg = MetricsRegistry()
        from repro.observability import labeled

        spec = SloSpec(
            name="p99", kind="quantile", metric="wait", threshold=10.0,
            group_by="shard",
        )
        t = {"now": 0.0}
        mon = SloMonitor(
            reg, [spec], clock=lambda: t["now"],
            policy=BurnRatePolicy(fast_window_ms=100.0, slow_window_ms=400.0),
        )
        assert mon.report(0.0)["slos"] == []  # no labeled series yet
        reg.histogram(labeled("wait", shard=0))
        reg.histogram(labeled("wait", shard=1))
        mon.evaluate(10.0)  # sync discovers both shards
        rows = mon.report(10.0)["slos"]
        assert [r["labels"] for r in rows] == [{"shard": "0"}, {"shard": "1"}]


# ----------------------------------------------------------------------
# Integration tier: the monitored partition drill
# ----------------------------------------------------------------------
@pytest.mark.fleet
@pytest.mark.sched
class TestPartitionDrill:
    @pytest.fixture(scope="class")
    def drill(self, trained_system, tiny_mnist):
        from repro.experiments import run_fleet_slo

        _, test = tiny_mnist
        return run_fleet_slo(
            trained_system,
            test.images[:40],
            sessions=4,
            num_shards=2,
            partition_round=2,
            heal_round=7,
        )

    def test_alert_fires_during_partition_and_clears_after_heal(self, drill):
        fired = drill.fired
        cleared = drill.cleared
        assert len(fired) == 1 and len(cleared) == 1
        fire, clear = fired[0], cleared[0]
        assert fire["slo"] == "queue-wait-p99"
        # The survivor shard (not the partitioned one) takes the pileup.
        assert fire["labels"] == {"shard": "1"}
        assert fire["severity"] == "page"
        assert clear["t_ms"] > fire["t_ms"]
        # No alert left standing at the end of the run.
        assert drill.health["alerts"] == []

    def test_no_flapping(self, drill):
        # Each target transitions at most fire -> (escalate) -> clear:
        # never a second fire.
        seen: dict[tuple, int] = {}
        for e in drill.alert_events:
            key = (e["slo"], tuple(sorted(e["labels"].items())))
            if e["transition"] == "fire":
                seen[key] = seen.get(key, 0) + 1
        assert all(count == 1 for count in seen.values())

    def test_windowed_p99_spike_visible_in_history_and_report(self, drill):
        spikes = [
            row["fast_value"]
            for row in drill.history
            if row["slo"] == "queue-wait-p99"
            and row["labels"] == {"shard": "1"}
            and row["fast_value"]
        ]
        assert spikes and max(spikes) > 25.0  # over the SLO threshold
        # The report keeps the spike visible after the windows slid past.
        (row,) = [
            r
            for r in drill.report["slos"]
            if r["slo"] == "queue-wait-p99" and r["labels"] == {"shard": "1"}
        ]
        assert row["peak_value"] == pytest.approx(max(spikes))
        assert row["min_budget_remaining"] == 0.0  # budget was consumed

    def test_health_snapshot_shape(self, drill):
        health = drill.health
        assert health["active_shards"] == 2  # healed by the end
        assert len(health["shards"]) == 2
        for shard in health["shards"]:
            assert {"shard", "state", "queue_depth", "slo"} <= set(shard)
            # Per-shard SLO panel: the two grouped objectives.
            panel = {row["slo"] for row in shard["slo"]}
            assert panel == {"queue-wait-p99", "shard-availability"}

    def test_availability_budget_consumed_on_partitioned_shard(self, drill):
        (row,) = [
            r
            for r in drill.report["slos"]
            if r["slo"] == "shard-availability" and r["labels"] == {"shard": "0"}
        ]
        assert row["min_budget_remaining"] == 0.0

    def test_deterministic_on_simulated_clock(
        self, drill, trained_system, tiny_mnist
    ):
        from repro.experiments import run_fleet_slo

        _, test = tiny_mnist
        again = run_fleet_slo(
            trained_system,
            test.images[:40],
            sessions=4,
            num_shards=2,
            partition_round=2,
            heal_round=7,
        )

        def signature(result):
            return [
                (e["slo"], tuple(sorted(e["labels"].items())),
                 e["transition"], e["severity"])
                for e in result.alert_events
            ]

        assert signature(again) == signature(drill)
        assert again.predictions == drill.predictions

    def test_monitor_off_is_bit_identical_and_footprint_free(
        self, drill, trained_system, tiny_mnist
    ):
        from repro.experiments import run_fleet_slo

        _, test = tiny_mnist
        off = run_fleet_slo(
            trained_system,
            test.images[:40],
            sessions=4,
            num_shards=2,
            partition_round=2,
            heal_round=7,
            monitor=False,
        )
        assert off.predictions == drill.predictions
        assert off.served_by == drill.served_by
        assert off.alert_events == [] and off.history == []
        assert off.report is None
        # No watcher attached anywhere: the metrics plane still exists
        # (the schedulers always record), but nothing observes it.
        for metric in off.registry:
            assert getattr(metric, "_watchers", ()) == ()


@pytest.mark.fleet
class TestDrillValidation:
    def test_heal_must_follow_partition(self, trained_system, tiny_mnist):
        import numpy as np

        from repro.experiments import run_fleet_slo

        with pytest.raises(ValueError, match="heal_round"):
            run_fleet_slo(
                trained_system,
                np.zeros((4, 1, 28, 28), dtype=np.float32),
                partition_round=3,
                heal_round=3,
            )
