"""Metrics applied to a real trained system (cross-module integration)."""

import numpy as np
import pytest

from repro.core import branch_entropies
from repro.metrics import (
    classification_report,
    confusion_matrix,
    exit_risk_coverage,
    expected_calibration_error,
    top_k_accuracy,
)
from repro.nn import functional as F


class TestSystemMetrics:
    def test_confusion_matrix_totals(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        result = trained_system.predictor().predict_dataset(test)
        matrix = confusion_matrix(result.predictions, test.labels, test.num_classes)
        assert matrix.sum() == len(test)
        # Diagonal mass equals accuracy.
        assert np.trace(matrix) / len(test) == pytest.approx(
            result.accuracy(test.labels)
        )

    def test_classification_report_consistency(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        result = trained_system.predictor().predict_dataset(test)
        report = classification_report(
            result.predictions, test.labels, test.num_classes
        )
        assert report.accuracy == pytest.approx(result.accuracy(test.labels))
        assert report.support.sum() == len(test)
        assert report.macro_f1 > 0.5  # the trained system is competent

    def test_topk_dominates_top1(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        main_logits, binary_logits = trained_system.trainer.predict_logits(test)
        top1 = top_k_accuracy(binary_logits, test.labels, k=1)
        top3 = top_k_accuracy(binary_logits, test.labels, k=3)
        assert top3 >= top1
        assert top1 == pytest.approx(F.accuracy(binary_logits, test.labels))

    def test_binary_branch_reasonably_calibrated(self, trained_system, tiny_mnist):
        """Entropy gating is safe only if confidence tracks correctness."""
        _, test = tiny_mnist
        _, binary_logits = trained_system.trainer.predict_logits(test)
        probs = F.softmax(binary_logits, axis=1)
        ece = expected_calibration_error(probs, test.labels)
        assert ece < 0.25

    def test_entropy_risk_coverage_is_informative(self, trained_system, tiny_mnist):
        """Low-entropy samples must be more often correct — the property
        Algorithm 2's exit rule relies on."""
        _, test = tiny_mnist
        entropies, binary_preds, _ = branch_entropies(
            trained_system.model, test.images
        )
        correct = binary_preds == test.labels
        coverage, risk = exit_risk_coverage(entropies, correct)
        # Risk at 25% coverage must not exceed risk at full coverage.
        quarter = risk[len(risk) // 4]
        assert quarter <= risk[-1] + 1e-9
