"""Exit-criterion ablation: entropy (the paper's Eq. 7) vs alternatives.

Calibrates entropy, max-probability and margin criteria on the *same*
trained binary branch at the same accuracy tolerance and compares the
exit rates each achieves — quantifying how much of LCRS's benefit comes
from the entropy choice specifically versus the gating mechanism itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCRS, JointTrainingConfig, branch_entropies, compare_criteria
from repro.data import make_dataset
from repro.experiments.reporting import render_table
from repro.nn import functional as F
from repro.nn.autograd import Tensor, no_grad

pytestmark = pytest.mark.slow  # trains systems from scratch


def _train_and_compare():
    train, test = make_dataset("cifar10", 1200, 400, seed=3)
    # A deliberately under-provisioned branch: the criteria comparison
    # is only informative when the binary branch genuinely trails the
    # main branch (otherwise every criterion exits everything and the
    # operating points are indistinguishable).
    from repro.core import BinaryBranchConfig

    system = LCRS.build(
        "lenet",
        train,
        branch_config=BinaryBranchConfig(
            num_conv_layers=1, num_fc_layers=1, channels=4, hidden=16
        ),
        training_config=JointTrainingConfig(epochs=5, lr_main=2e-3, seed=3),
        dataset_name="cifar10",
        seed=3,
    )
    system.fit(train)

    model = system.model
    model.eval()
    with no_grad():
        features = model.forward_features(Tensor(test.images))
        binary_probs = F.softmax(model.binary_branch(features).data, axis=1)
        main_preds = model.main_trunk(features).data.argmax(axis=1)
    binary_preds = binary_probs.argmax(axis=1)
    results = compare_criteria(
        binary_probs,
        binary_preds == test.labels,
        main_preds == test.labels,
        accuracy_tolerance=0.03,
    )
    return results


def test_exit_criteria_ablation(benchmark, announce):
    results = benchmark.pedantic(_train_and_compare, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{cal.threshold:.4f}",
            f"{100 * cal.exit_rate:.0f}",
            f"{100 * cal.overall_accuracy:.1f}",
        ]
        for name, cal in results.items()
    ]
    announce(
        render_table(
            ["criterion", "tau", "exit%", "overall acc%"],
            rows,
            title="exit-criterion ablation (lenet/cifar10, equal accuracy tolerance)",
        )
    )

    # Every criterion must produce a usable operating point...
    for name, cal in results.items():
        assert cal.exit_rate > 0.05, name
    # ...and entropy must be competitive with the best alternative
    # (within 10 points of exit rate) — the paper's choice is sound.
    best = max(cal.exit_rate for cal in results.values())
    assert results["entropy"].exit_rate >= best - 0.10


def test_benchmark_criterion_evaluation(benchmark):
    from repro.core import entropy_criterion

    rng = np.random.default_rng(0)
    logits = rng.standard_normal((4096, 100))
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)
    benchmark(lambda: entropy_criterion(probs))
