"""Unit tests for the reverse-mode autograd engine."""

import numpy as np
import pytest

from repro import nn
from repro.nn.autograd import (
    Tensor,
    _unbroadcast,
    backward,
    concatenate,
    is_grad_enabled,
    no_grad,
    ones,
    pad2d,
    randn,
    tensor,
    zeros,
)


def numerical_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        grad[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_grad(build, x: np.ndarray, atol: float = 1e-4) -> None:
    """Compare autograd's gradient with numerical differentiation."""
    x = x.astype(np.float64)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.sum().backward()
    num = numerical_grad(lambda: float(build(Tensor(x)).sum().item()), x)
    assert t.grad is not None
    np.testing.assert_allclose(t.grad, num, atol=atol)


class TestTensorBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = zeros((2, 3, 4))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_item_and_len(self):
        assert Tensor(5.0).item() == 5.0
        assert len(Tensor([1.0, 2.0])) == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert d._parents == ()

    def test_zeros_ones_randn_factories(self):
        assert zeros((2,)).data.sum() == 0
        assert ones((2,)).data.sum() == 2
        r = randn((100,), scale=0.5, rng=np.random.default_rng(0))
        assert r.shape == (100,)

    def test_tensor_factory(self):
        t = tensor([1.0], requires_grad=True)
        assert t.requires_grad


class TestNoGrad:
    def test_disables_recording(self):
        with no_grad():
            assert not is_grad_enabled()
            t = Tensor([1.0], requires_grad=True)
            out = t * 2
        assert is_grad_enabled()
        assert not t.requires_grad  # creation inside no_grad drops the flag
        assert out._backward is None

    def test_nested_restores(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_leading_axis_summed(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        np.testing.assert_array_equal(out, np.full((2, 3), 4.0))

    def test_kept_axis_of_one(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (1, 3))
        np.testing.assert_array_equal(out, np.full((1, 3), 2.0))


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda t: t + 3.0, np.random.randn(3, 4))

    def test_radd(self):
        check_grad(lambda t: 3.0 + t, np.random.randn(3))

    def test_sub_and_rsub(self):
        check_grad(lambda t: t - 1.5, np.random.randn(4))
        check_grad(lambda t: 1.5 - t, np.random.randn(4))

    def test_mul(self):
        check_grad(lambda t: t * t, np.random.randn(3, 3))

    def test_div(self):
        check_grad(lambda t: t / 2.0, np.random.randn(5))

    def test_rdiv(self):
        check_grad(lambda t: 1.0 / t, np.random.rand(5) + 1.0)

    def test_pow(self):
        check_grad(lambda t: t**3, np.random.rand(4) + 0.5)

    def test_neg(self):
        check_grad(lambda t: -t, np.random.randn(4))

    def test_matmul(self):
        w = np.random.randn(4, 3)
        check_grad(lambda t: t @ Tensor(w), np.random.randn(2, 4))

    def test_broadcast_add_gradient(self):
        a = Tensor(np.random.randn(2, 3), requires_grad=True)
        b = Tensor(np.random.randn(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, np.full(3, 2.0))


class TestShapeOps:
    def test_reshape_grad(self):
        check_grad(lambda t: t.reshape(6) * 2, np.random.randn(2, 3))

    def test_reshape_tuple_arg(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_grad(self):
        check_grad(lambda t: t.transpose(1, 0) * 2, np.random.randn(2, 3))

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_flatten_batch(self):
        t = Tensor(np.zeros((5, 2, 3)))
        assert t.flatten_batch().shape == (5, 6)

    def test_getitem_grad(self):
        t = Tensor(np.random.randn(4, 3), requires_grad=True)
        t[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_array_equal(t.grad, expected)


class TestReductionsAndNonlinearities:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        check_grad(lambda t: t.mean() * 6, np.random.randn(2, 3))

    def test_mean_tuple_axis(self):
        t = Tensor(np.ones((2, 3, 4)))
        assert t.mean(axis=(1, 2)).shape == (2,)

    def test_max_grad_splits_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5, 0.0]])

    def test_relu(self):
        check_grad(lambda t: t.relu(), np.random.randn(10) + 0.1)

    def test_exp_log_sqrt_abs_tanh(self):
        check_grad(lambda t: t.exp(), np.random.randn(4))
        check_grad(lambda t: t.log(), np.random.rand(4) + 0.5)
        check_grad(lambda t: t.sqrt(), np.random.rand(4) + 0.5)
        check_grad(lambda t: t.abs(), np.random.randn(4) + 2.0)
        check_grad(lambda t: t.tanh(), np.random.randn(4))

    def test_clip_grad_masks_outside(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        t.clip(-1, 1).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestSignSTE:
    def test_forward_is_plus_minus_one(self):
        t = Tensor(np.array([-0.5, 0.0, 0.7]))
        np.testing.assert_array_equal(t.sign_ste().data, [-1.0, 1.0, 1.0])

    def test_backward_passes_inside_window(self):
        t = Tensor(np.array([-0.5, 0.5]), requires_grad=True)
        t.sign_ste().sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0, 1.0])

    def test_backward_blocks_outside_window(self):
        t = Tensor(np.array([-5.0, 5.0]), requires_grad=True)
        t.sign_ste().sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 0.0])

    def test_custom_clip(self):
        t = Tensor(np.array([1.5]), requires_grad=True)
        t.sign_ste(clip=2.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [1.0])


class TestGraphMechanics:
    def test_diamond_graph_accumulates_once(self):
        # y = a*a + a*a shares the subexpression a twice.
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * a
        y = b + b
        y.backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * 1.0).backward()
        (a * 1.0).backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_zero_grad(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * 3.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_functional_backward_with_seed(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = a * 2.0
        backward(out, grad=np.array([1.0, 0.0]))
        np.testing.assert_allclose(a.grad, [2.0, 0.0])

    def test_no_grad_for_untracked_leaves(self):
        a = Tensor(np.array([1.0]))
        out = a * 2.0
        out.backward()
        assert a.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Iterative toposort must handle graphs deeper than the default
        # Python recursion limit.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 0.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestConcatenateAndPad:
    def test_concatenate_forward(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((3, 2)))
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)

    def test_concatenate_grad_routes_to_parts(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((1, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        (out * Tensor(np.arange(6, dtype=np.float32).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
        np.testing.assert_allclose(b.grad, [[4, 5]])

    def test_pad2d_shapes_and_grad(self):
        x = Tensor(np.random.randn(1, 1, 3, 3), requires_grad=True)
        out = pad2d(x, 2)
        assert out.shape == (1, 1, 7, 7)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((1, 1, 3, 3)))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.random.randn(1, 1, 3, 3))
        assert pad2d(x, 0) is x
