"""Execution tracer: records every leaf layer a forward pass touches.

Partition-offloading baselines (Neurosurgeon, Edgent) and the latency
simulator all need a *layer-level* view of a network: execution order,
per-layer compute, parameter bytes, and activation sizes at each cut
point.  Rather than requiring networks to declare this by hand, the
tracer temporarily instruments :class:`repro.nn.module.Module` and runs a
probe forward pass, capturing each leaf module (one with no children)
with its input/output shapes in execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn.autograd import Tensor, no_grad
from ..nn.module import Module


@dataclass(frozen=True)
class TracedLayer:
    """One leaf-layer invocation captured during the probe pass."""

    index: int
    module: Module
    kind: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]


def trace(module: Module, input_shape: tuple[int, ...]) -> list[TracedLayer]:
    """Run a probe forward pass and return leaf layers in execution order.

    ``input_shape`` excludes the batch dimension; the probe uses batch 1.
    The module is probed in eval mode and restored afterwards.
    """
    records: list[TracedLayer] = []
    original_call = Module.__call__

    def recording_call(self: Module, *args: object, **kwargs: object) -> object:
        out = original_call(self, *args, **kwargs)
        is_leaf = not self._modules
        if is_leaf and args and isinstance(args[0], Tensor) and isinstance(out, Tensor):
            records.append(
                TracedLayer(
                    index=len(records),
                    module=self,
                    kind=type(self).__name__,
                    input_shape=tuple(args[0].shape),
                    output_shape=tuple(out.shape),
                )
            )
        return out

    probe = Tensor(np.zeros((1,) + tuple(input_shape), dtype=np.float32))
    was_training = module.training
    module.eval()
    Module.__call__ = recording_call  # type: ignore[method-assign]
    try:
        with no_grad():
            module(probe)
    finally:
        Module.__call__ = original_call  # type: ignore[method-assign]
        module.train(was_training)
    return records
