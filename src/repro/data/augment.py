"""Image augmentation pipeline.

The paper's AR case studies (§V-C) expand small logo datasets with
"rotation, translation, zoom, flips and colour perturbation"; this module
implements exactly those operators on CHW float arrays, plus a composable
:class:`Augmenter` that applies a random subset per sample.

All geometric ops go through a single bilinear affine warp so they compose
without repeated resampling loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np


def affine_warp(image: np.ndarray, matrix: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Apply an inverse-mapped 2×3 affine warp with bilinear sampling.

    ``matrix`` maps *output* pixel coordinates (centered) to *input*
    coordinates — the inverse transform, which is what you want for
    resampling without holes.
    """
    c, h, w = image.shape
    cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
    ys, xs = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    coords = np.stack([ys - cy, xs - cx], axis=0).reshape(2, -1)  # centered (y, x)

    src = matrix[:, :2] @ coords + matrix[:, 2:3]
    sy = src[0] + cy
    sx = src[1] + cx

    y0 = np.floor(sy).astype(np.int64)
    x0 = np.floor(sx).astype(np.int64)
    wy = (sy - y0).astype(image.dtype)
    wx = (sx - x0).astype(image.dtype)

    def sample(yi: np.ndarray, xi: np.ndarray) -> np.ndarray:
        valid = (yi >= 0) & (yi < h) & (xi >= 0) & (xi < w)
        yc = np.clip(yi, 0, h - 1)
        xc = np.clip(xi, 0, w - 1)
        vals = image[:, yc, xc]  # (C, H*W)
        return np.where(valid[None, :], vals, fill)

    top = sample(y0, x0) * (1 - wx) + sample(y0, x0 + 1) * wx
    bottom = sample(y0 + 1, x0) * (1 - wx) + sample(y0 + 1, x0 + 1) * wx
    out = top * (1 - wy) + bottom * wy
    return out.reshape(c, h, w).astype(image.dtype)


def rotate(image: np.ndarray, degrees: float, fill: float = 0.0) -> np.ndarray:
    """Rotate about the image center by ``degrees`` (counter-clockwise)."""
    rad = math.radians(degrees)
    cos, sin = math.cos(rad), math.sin(rad)
    # Inverse rotation matrix in (y, x) coordinates.
    matrix = np.array([[cos, sin, 0.0], [-sin, cos, 0.0]], dtype=np.float64)
    return affine_warp(image, matrix, fill)


def translate(image: np.ndarray, dy: float, dx: float, fill: float = 0.0) -> np.ndarray:
    """Shift by (dy, dx) pixels; positive moves content down/right."""
    matrix = np.array([[1.0, 0.0, -dy], [0.0, 1.0, -dx]], dtype=np.float64)
    return affine_warp(image, matrix, fill)


def zoom(image: np.ndarray, factor: float, fill: float = 0.0) -> np.ndarray:
    """Scale about the center; ``factor > 1`` zooms in."""
    if factor <= 0:
        raise ValueError(f"zoom factor must be positive, got {factor}")
    inv = 1.0 / factor
    matrix = np.array([[inv, 0.0, 0.0], [0.0, inv, 0.0]], dtype=np.float64)
    return affine_warp(image, matrix, fill)


def horizontal_flip(image: np.ndarray) -> np.ndarray:
    return image[:, :, ::-1].copy()


def vertical_flip(image: np.ndarray) -> np.ndarray:
    return image[:, ::-1, :].copy()


def color_perturbation(
    image: np.ndarray,
    rng: np.random.Generator,
    brightness: float = 0.2,
    contrast: float = 0.2,
    channel_shift: float = 0.1,
) -> np.ndarray:
    """Random brightness/contrast scaling plus per-channel offsets."""
    out = image.astype(np.float32)
    b = rng.uniform(-brightness, brightness)
    c = 1.0 + rng.uniform(-contrast, contrast)
    mean = out.mean()
    out = (out - mean) * c + mean + b
    if image.shape[0] > 1 and channel_shift > 0:
        shifts = rng.uniform(-channel_shift, channel_shift, size=(image.shape[0], 1, 1))
        out = out + shifts.astype(np.float32)
    return out


def additive_noise(image: np.ndarray, rng: np.random.Generator, sigma: float) -> np.ndarray:
    return image + rng.normal(0.0, sigma, size=image.shape).astype(image.dtype)


@dataclass
class Augmenter:
    """Random augmentation policy matching the paper's §V-C list.

    Each field bounds the corresponding random transform; set a field to
    zero/False to disable it.  Call the instance on a CHW image to get an
    augmented copy.
    """

    max_rotation: float = 15.0
    max_translation: float = 2.0
    zoom_range: tuple[float, float] = (0.9, 1.1)
    allow_hflip: bool = True
    allow_vflip: bool = False
    brightness: float = 0.15
    contrast: float = 0.15
    channel_shift: float = 0.1
    noise_sigma: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        rng = self._rng
        out = image
        if self.max_rotation > 0:
            out = rotate(out, rng.uniform(-self.max_rotation, self.max_rotation))
        if self.max_translation > 0:
            out = translate(
                out,
                rng.uniform(-self.max_translation, self.max_translation),
                rng.uniform(-self.max_translation, self.max_translation),
            )
        lo, hi = self.zoom_range
        if (lo, hi) != (1.0, 1.0):
            out = zoom(out, rng.uniform(lo, hi))
        if self.allow_hflip and rng.random() < 0.5:
            out = horizontal_flip(out)
        if self.allow_vflip and rng.random() < 0.5:
            out = vertical_flip(out)
        if self.brightness > 0 or self.contrast > 0:
            out = color_perturbation(
                out, rng, self.brightness, self.contrast, self.channel_shift
            )
        if self.noise_sigma > 0:
            out = additive_noise(out, rng, self.noise_sigma)
        return out.astype(np.float32)

    def expand(
        self, images: np.ndarray, labels: np.ndarray, copies: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Data-augmentation expansion used for the AR logo datasets.

        Returns the originals plus ``copies`` augmented variants of each.
        """
        out_images = [images]
        out_labels = [labels]
        for _ in range(copies):
            out_images.append(np.stack([self(img) for img in images]))
            out_labels.append(labels)
        return np.concatenate(out_images), np.concatenate(out_labels)
