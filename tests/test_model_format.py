"""Unit tests for the .lcrs browser model format."""

import numpy as np
import pytest

from repro import nn
from repro.nn.binary import BinaryConv2d, BinaryLinear
from repro.wasm import (
    FORMAT_VERSION,
    MAGIC,
    ModelFormatError,
    iter_leaf_modules,
    parse_model,
    serialize_browser_bundle,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def bundle(rng):
    return nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Sequential(
            nn.BatchNorm2d(4),
            BinaryConv2d(4, 8, 3, padding=1, rng=rng),
        ),
        nn.Flatten(),
        BinaryLinear(8 * 4 * 4, 16, rng=rng),
        nn.BatchNorm1d(16),
        nn.Linear(16, 10, rng=rng),
    )


class TestIterLeafModules:
    def test_flattens_nested_sequentials(self, bundle):
        kinds = [type(m).__name__ for m in iter_leaf_modules(bundle)]
        assert kinds == [
            "Conv2d",
            "ReLU",
            "MaxPool2d",
            "BatchNorm2d",
            "BinaryConv2d",
            "Flatten",
            "BinaryLinear",
            "BatchNorm1d",
            "Linear",
        ]

    def test_rejects_composite_non_sequential(self, rng):
        from repro.models.resnet import BasicBlock

        with pytest.raises(ModelFormatError):
            list(iter_leaf_modules(nn.Sequential(BasicBlock(2, 2, rng=rng))))


class TestSerialization:
    def test_header_layout(self, bundle):
        payload = serialize_browser_bundle(bundle, (1, 8, 8))
        assert payload[:4] == MAGIC
        parsed = parse_model(payload)
        assert parsed.input_shape == (1, 8, 8)
        assert len(parsed.layers) == 9

    def test_metadata_roundtrip(self, bundle):
        payload = serialize_browser_bundle(
            bundle, (1, 8, 8), metadata={"network": "test", "tau": 0.05}
        )
        parsed = parse_model(payload)
        assert parsed.metadata["network"] == "test"
        assert parsed.metadata["tau"] == 0.05

    def test_binary_layers_store_packed_bits(self, bundle):
        parsed = parse_model(serialize_browser_bundle(bundle, (1, 8, 8)))
        bconv = next(l for l in parsed.layers if l["type"] == "binary_conv2d")
        bits = parsed.buffer(bconv["weight_bits"])
        assert bits.dtype == np.uint8
        row_bits = 4 * 9  # fan-in bits per output filter
        assert bits.shape == (8, (row_bits + 7) // 8)
        assert bconv["bit_length"] == row_bits

    def test_binary_payload_smaller_than_float(self, rng):
        float_layer = nn.Sequential(nn.Linear(256, 128, rng=rng))
        binary_layer = nn.Sequential(BinaryLinear(256, 128, rng=rng))
        # Compare on flattened input — use a 2-D-friendly probe shape.
        fp = serialize_browser_bundle(float_layer, (1, 16, 16))
        bp = serialize_browser_bundle(binary_layer, (1, 16, 16))
        assert len(bp) < len(fp) / 10

    def test_buffer_values_roundtrip(self, rng):
        conv = nn.Conv2d(2, 3, 3, rng=rng)
        parsed = parse_model(serialize_browser_bundle(nn.Sequential(conv), (2, 8, 8)))
        weight = parsed.buffer(parsed.layers[0]["weight"])
        np.testing.assert_array_equal(weight, conv.weight.data)

    def test_unsupported_layer_rejected(self):
        class Strange(nn.Module):
            def forward(self, x):
                return x

        with pytest.raises(ModelFormatError):
            serialize_browser_bundle(nn.Sequential(Strange()), (1, 4, 4))


class TestParsingErrors:
    def test_bad_magic(self):
        with pytest.raises(ModelFormatError):
            parse_model(b"NOPE" + b"\x00" * 20)

    def test_too_short(self):
        with pytest.raises(ModelFormatError):
            parse_model(b"LC")

    def test_bad_version(self, bundle):
        payload = bytearray(serialize_browser_bundle(bundle, (1, 8, 8)))
        payload[4] = 99  # clobber the version field
        with pytest.raises(ModelFormatError):
            parse_model(bytes(payload))

    def test_truncated_header(self, bundle):
        payload = serialize_browser_bundle(bundle, (1, 8, 8))
        with pytest.raises(ModelFormatError):
            parse_model(payload[:12])

    def test_corrupt_header_json(self, bundle):
        payload = bytearray(serialize_browser_bundle(bundle, (1, 8, 8)))
        payload[10] = 0xFF  # first header byte → invalid JSON/UTF-8
        with pytest.raises(ModelFormatError):
            parse_model(bytes(payload))

    def test_buffer_slot_out_of_range(self, bundle):
        parsed = parse_model(serialize_browser_bundle(bundle, (1, 8, 8)))
        bad_slot = {"offset": len(parsed.blob), "nbytes": 64, "dtype": "float32", "shape": [16]}
        with pytest.raises(ModelFormatError):
            parsed.buffer(bad_slot)

    def test_format_version_constant(self):
        assert FORMAT_VERSION == 1
