"""Unit tests for device profiles, the link model, and the latency engine."""

import numpy as np
import pytest

from repro.runtime import (
    ComputeStep,
    EDGE_SERVER,
    ExecutionPlan,
    Location,
    MOBILE_BROWSER_WASM,
    ModelLoadStep,
    NetworkLink,
    TransferStep,
    DeviceProfile,
    compute_step_from_layers,
    four_g,
    simulate_plan,
    three_g,
    wifi,
)


class TestDeviceProfile:
    def test_compute_ms_formula(self):
        device = DeviceProfile(name="d", flops_per_second=1e9)
        assert device.compute_ms(1e9) == pytest.approx(1000.0)

    def test_binary_speedup_applied(self):
        device = DeviceProfile(name="d", flops_per_second=1e9, binary_speedup=10.0)
        assert device.compute_ms(1e9, binary=True) == pytest.approx(100.0)

    def test_parse_ms(self):
        device = DeviceProfile(
            name="d", flops_per_second=1e9, model_parse_bytes_per_second=1e6
        )
        assert device.parse_ms(1_000_000) == pytest.approx(1000.0)

    def test_scaled_copy(self):
        scaled = MOBILE_BROWSER_WASM.scaled(2.0)
        assert scaled.flops_per_second == MOBILE_BROWSER_WASM.flops_per_second * 2
        assert scaled is not MOBILE_BROWSER_WASM

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", flops_per_second=0)
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", flops_per_second=1e9, binary_speedup=0.5)

    def test_presets_ordering(self):
        """The edge must be much faster than the browser — the asymmetry
        the whole collaborative design exploits."""
        assert EDGE_SERVER.flops_per_second > 10 * MOBILE_BROWSER_WASM.flops_per_second


class TestNetworkLink:
    def test_paper_link_parameters(self):
        link = four_g()
        assert link.downlink_bps == 10e6
        assert link.uplink_bps == 3e6

    def test_deterministic_transfer_times(self):
        link = four_g().deterministic()
        # 1 MB down at 10 Mb/s = 800 ms + half RTT.
        assert link.download_ms(1_000_000) == pytest.approx(800 + 25)
        assert link.upload_ms(375_000) == pytest.approx(1000 + 25)

    def test_jitter_varies_but_is_seeded(self):
        a = four_g(seed=1, jitter_sigma=0.3)
        b = four_g(seed=1, jitter_sigma=0.3)
        assert a.download_ms(1e6) == b.download_ms(1e6)
        assert a.download_ms(1e6) != a.download_ms(1e6)  # next draw differs

    def test_round_trip(self):
        assert four_g().deterministic().round_trip_ms() == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink(name="x", downlink_bps=0, uplink_bps=1, rtt_ms=1)
        with pytest.raises(ValueError):
            NetworkLink(name="x", downlink_bps=1, uplink_bps=1, rtt_ms=-1)

    def test_presets_relative_quality(self):
        assert wifi().downlink_bps > four_g().downlink_bps > three_g().downlink_bps

    def test_reseeded_changes_draws(self):
        a = four_g(seed=1, jitter_sigma=0.3)
        b = a.reseeded(2)
        assert a.download_ms(1e6) != b.download_ms(1e6)


class TestPlanSteps:
    def test_compute_step_duration(self):
        step = ComputeStep(Location.BROWSER, float_flops=1.5e9, binary_flops=1.5e9)
        device = DeviceProfile(name="d", flops_per_second=1.5e9, binary_speedup=10)
        assert step.duration_ms(device) == pytest.approx(1000 + 100)

    def test_layer_overhead_counted(self):
        step = ComputeStep(Location.BROWSER, float_flops=0, num_layers=10)
        device = DeviceProfile(name="d", flops_per_second=1e9, layer_overhead_ms=0.5)
        assert step.duration_ms(device) == pytest.approx(5.0)

    def test_transfer_direction(self):
        link = four_g().deterministic()
        up = TransferStep(375_000, upload=True)
        down = TransferStep(375_000, upload=False)
        assert up.duration_ms(link) > down.duration_ms(link)

    def test_model_load_includes_parse(self):
        link = four_g().deterministic()
        step = ModelLoadStep(1_000_000)
        browser = DeviceProfile(
            name="b", flops_per_second=1e9, model_parse_bytes_per_second=10e6
        )
        assert step.duration_ms(link, browser) == pytest.approx(800 + 25 + 100)

    def test_compute_step_from_layers_splits_binary(self):
        from repro import nn
        from repro.nn.binary import BinaryConv2d
        from repro.profiling import NetworkProfile

        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(1, 2, 3, rng=rng), BinaryConv2d(2, 2, 3, rng=rng)
        )
        profile = NetworkProfile.of(model, (1, 8, 8))
        step = compute_step_from_layers(profile.layers, Location.EDGE)
        assert step.float_flops > 0 and step.binary_flops > 0


class TestSimulatePlan:
    def make_plan(self):
        return ExecutionPlan(
            approach="test",
            network="net",
            setup_steps=[ModelLoadStep(1_000_000)],
            per_sample_steps=[ComputeStep(Location.BROWSER, float_flops=1.5e9)],
            miss_steps=[TransferStep(375_000, upload=True)],
        )

    def context(self):
        link = four_g().deterministic()
        browser = DeviceProfile(
            name="b",
            flops_per_second=1.5e9,
            model_parse_bytes_per_second=float("inf"),
        )
        return link, browser, EDGE_SERVER

    def test_cold_start_charges_setup_every_sample(self):
        link, browser, edge = self.context()
        trace = simulate_plan(self.make_plan(), 3, link, browser, edge, cold_start=True)
        for sample in trace.samples:
            assert sample.total_ms == pytest.approx(825 + 1000)

    def test_warm_start_charges_setup_once(self):
        link, browser, edge = self.context()
        trace = simulate_plan(
            self.make_plan(), 3, link, browser, edge, cold_start=False
        )
        assert trace.samples[0].total_ms == pytest.approx(825 + 1000)
        assert trace.samples[1].total_ms == pytest.approx(1000)

    def test_miss_mask_triggers_miss_steps(self):
        link, browser, edge = self.context()
        trace = simulate_plan(
            self.make_plan(),
            2,
            link,
            browser,
            edge,
            cold_start=False,
            miss_mask=[False, True],
        )
        assert trace.samples[0].exited_locally is True
        assert trace.samples[1].exited_locally is False
        assert trace.samples[1].total_ms > trace.samples[0].total_ms

    def test_compute_comm_split(self):
        link, browser, edge = self.context()
        trace = simulate_plan(self.make_plan(), 1, link, browser, edge, cold_start=True)
        s = trace.samples[0]
        assert s.communication_ms == pytest.approx(825)
        assert s.compute_ms == pytest.approx(1000)
        assert s.total_ms == s.communication_ms + s.compute_ms

    def test_running_average_monotone_for_constant_samples(self):
        link, browser, edge = self.context()
        trace = simulate_plan(
            self.make_plan(), 5, link, browser, edge, cold_start=False
        )
        avg = trace.running_average()
        assert len(avg) == 5
        assert avg[0] > avg[-1]  # amortized setup pulls the average down

    def test_validation_errors(self):
        link, browser, edge = self.context()
        with pytest.raises(ValueError):
            simulate_plan(self.make_plan(), 0, link, browser, edge)
        with pytest.raises(ValueError):
            simulate_plan(
                self.make_plan(), 3, link, browser, edge, miss_mask=[True]
            )

    def test_plan_model_load_bytes(self):
        assert self.make_plan().model_load_bytes() == 1_000_000
