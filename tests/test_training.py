"""Unit tests for the joint trainer (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    BinaryBranchConfig,
    CompositeNetwork,
    JointTrainer,
    JointTrainingConfig,
    LCRS,
)
from repro.data import make_dataset
from repro.models import build_model
from repro.nn.binary import BinaryConv2d, BinaryLinear


@pytest.fixture
def small_system(tiny_mnist):
    train, _ = tiny_mnist
    rng = np.random.default_rng(0)
    base = build_model("lenet", 1, train.num_classes, 28, rng=rng)
    model = CompositeNetwork(base, BinaryBranchConfig(channels=8, hidden=32), rng=rng)
    return model


class TestTrainStep:
    def test_returns_loss_triple(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=1))
        total, main, binary = trainer.train_step(train.images[:32], train.labels[:32])
        assert total == pytest.approx(main + binary, rel=1e-5)

    def test_loss_decreases_over_steps(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=1))
        x, y = train.images[:64], train.labels[:64]
        first = trainer.train_step(x, y)[0]
        for _ in range(15):
            last = trainer.train_step(x, y)[0]
        assert last < first

    def test_binary_master_weights_stay_clamped(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=1))
        for _ in range(5):
            trainer.train_step(train.images[:32], train.labels[:32])
        for module in small_system.binary_branch.modules():
            if isinstance(module, (BinaryConv2d, BinaryLinear)):
                assert np.abs(module.weight.data).max() <= 1.0 + 1e-6

    def test_clamping_can_be_disabled(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        config = JointTrainingConfig(epochs=1, clamp_binary_weights=False, lr_binary=1.0)
        trainer = JointTrainer(small_system, config)
        for _ in range(10):
            trainer.train_step(train.images[:32], train.labels[:32])
        maxima = [
            np.abs(m.weight.data).max()
            for m in small_system.binary_branch.modules()
            if isinstance(m, (BinaryConv2d, BinaryLinear))
        ]
        assert max(maxima) > 1.0  # huge LR, no clamp → weights escape

    def test_both_optimizers_update_their_groups(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=1))
        main_before = [p.data.copy() for p in small_system.main_parameters()]
        binary_before = [p.data.copy() for p in small_system.binary_parameters()]
        trainer.train_step(train.images[:32], train.labels[:32])
        assert any(
            not np.allclose(a, p.data)
            for a, p in zip(main_before, small_system.main_parameters())
        )
        assert any(
            not np.allclose(a, p.data)
            for a, p in zip(binary_before, small_system.binary_parameters())
        )


class TestFit:
    def test_history_has_one_entry_per_epoch(self, small_system, tiny_mnist):
        train, test = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=3))
        history = trainer.fit(train, test)
        assert len(history.epochs) == 3
        assert history.final.epoch == 2

    def test_test_metrics_recorded_when_given(self, small_system, tiny_mnist):
        train, test = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=1))
        history = trainer.fit(train, test)
        assert history.final.test_accuracy_main is not None

    def test_series_extraction(self, small_system, tiny_mnist):
        train, _ = tiny_mnist
        trainer = JointTrainer(small_system, JointTrainingConfig(epochs=2))
        history = trainer.fit(train)
        assert len(history.series("loss_binary")) == 2

    def test_empty_history_final_raises(self):
        from repro.core.training import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final

    def test_training_improves_both_branches(self, tiny_mnist):
        train, test = tiny_mnist
        system = LCRS.build(
            "lenet",
            train,
            training_config=JointTrainingConfig(epochs=6, lr_main=2e-3, seed=1),
            seed=1,
        )
        m0, b0 = system.trainer.evaluate(test)
        system.fit(train)
        m1, b1 = system.trainer.evaluate(test)
        assert m1 > m0 + 0.2
        assert b1 > b0 + 0.2


class TestEvaluate:
    def test_accuracy_range(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        main, binary = trained_system.trainer.evaluate(test)
        assert 0.0 <= binary <= 1.0
        assert main >= 0.5  # trained system must clearly beat chance

    def test_predict_logits_shapes(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        main, binary = trained_system.trainer.predict_logits(test, batch_size=32)
        assert main.shape == (len(test), test.num_classes)
        assert binary.shape == main.shape

    def test_eval_does_not_touch_parameters(self, trained_system, tiny_mnist):
        _, test = tiny_mnist
        before = {
            name: p.data.copy()
            for name, p in trained_system.model.named_parameters()
        }
        trained_system.trainer.evaluate(test)
        for name, p in trained_system.model.named_parameters():
            np.testing.assert_array_equal(before[name], p.data)
