"""Optimizers and learning-rate schedules for the training substrate."""

from .optimizers import SGD, Adam, Optimizer
from .schedulers import ConstantLR, CosineAnnealingLR, LRScheduler, StepLR

__all__ = [
    "Adam",
    "ConstantLR",
    "CosineAnnealingLR",
    "LRScheduler",
    "Optimizer",
    "SGD",
    "StepLR",
]
