"""Shared-edge dynamic batching: many browser sessions, one trunk.

The paper's §I cost argument — "the computing cost of high concurrent
requests is unacceptable" — is about the *edge provider*: every AR user
whose binary branch misses ships conv1 features to the same box.  A
per-request trunk pass pays the full call overhead (request handling,
kernel dispatch, memory setup) for every sample; an edge that aggregates
concurrent misses into one batched trunk pass amortizes that overhead
across tenants, which is where multi-session serving throughput comes
from.

This module is that edge.  :class:`EdgeScheduler` owns a bounded queue
of admitted :class:`~repro.runtime.protocol.BatchInferenceRequest`
frames from N concurrent sessions and a *simulated* clock:

* **submit** — synchronous admission.  A well-formed batch request is
  either queued (answered with a deferred :class:`SchedulerAck`) or shed
  with a structured 503 when the queue is full or the tenant is over its
  fair share.  Shed requests run the client's normal retry policy and,
  on exhaustion, the binary-branch fallback — overload degrades
  accuracy, never availability.
* **flush** — dynamic batch formation.  Requests arriving within
  ``window_ms`` of the queue head coalesce, round-robin across tenants,
  up to ``max_batch_size`` samples; each batch executes through the
  trunk *once* (real computation) and is priced by an affine
  :class:`~repro.runtime.concurrency.ServiceTimeModel` on the simulated
  clock (modelled time).
* **collect** — correlated reply routing.  Each admitted ticket yields
  one :class:`~repro.runtime.protocol.BatchInferenceResponse` carrying
  the submitting session's id and sequence set, plus the queueing delay
  the scheduler charged it.

Timing is fully deterministic: arrivals are simulated-clock timestamps
supplied by the caller, service times come from the model, and ties
break on monotonic tickets — the same submissions always form the same
batches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..observability import NULL_RECORDER, Counter, labeled
from ..observability.clock import now_ms
from ..profiling import SchedulerCounters
from ..profiling.layer_stats import NetworkProfile
from .concurrency import ServiceTimeModel
from .latency import ComputeStep
from .profiles import DeviceProfile, EDGE_SERVER
from .protocol import (
    BatchInferenceRequest,
    BatchInferenceResponse,
    ErrorResponse,
    ProtocolError,
    SchedulerAck,
    decode_frame,
    encode_frame,
)
from .session import (
    SERVED_BY_FALLBACK,
    EdgeEndpoint,
    LCRSDeployment,
    RecognitionOutcome,
    SampleCost,
    SessionConfig,
    SessionResult,
    SessionTrace,
)
from .worker_pool import WorkerPool


@dataclass(frozen=True)
class SchedulerConfig:
    """Dynamic-batching and admission-control knobs.

    ``window_ms`` is how long (simulated) the queue head waits for
    company before its batch dispatches; ``0`` batches only requests
    arriving at the same instant.  ``max_batch_size`` caps samples per
    trunk pass.  ``queue_capacity`` bounds total queued samples — the
    backpressure that turns overload into 503s instead of unbounded
    latency.  ``max_per_tenant`` caps one session's queued samples; the
    default is an equal share of capacity across registered tenants.
    """

    window_ms: float = 4.0
    max_batch_size: int = 32
    queue_capacity: int = 256
    max_per_tenant: Optional[int] = None
    #: Concurrent trunk workers (the M/M/c ``c``).  Each dynamic batch
    #: runs whole on one worker; with ``c > 1`` batches overlap on the
    #: simulated clock and execute through a real thread pool.
    num_workers: int = 1

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ValueError("window_ms must be non-negative")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.max_per_tenant is not None and self.max_per_tenant < 1:
            raise ValueError("max_per_tenant must be at least 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")


@dataclass
class _Queued:
    """One admitted request waiting for its batch."""

    ticket: int
    tenant: int
    request: BatchInferenceRequest
    arrival_ms: float

    @property
    def samples(self) -> int:
        return len(self.request.sequences)


@dataclass
class _Batch:
    """One formed dynamic batch, assigned to a simulated worker.

    Formation and worker assignment are decided *before* any real
    execution (membership depends only on arrivals and the window, never
    on execution results), so the batches of a flush can run through the
    worker pool concurrently and still route replies deterministically.
    """

    batch_id: int
    worker: int
    chosen: list[_Queued]
    total: int
    start_ms: float
    exec_ms: float


class EdgeScheduler:
    """The shared edge: bounded admission, dynamic batching, one trunk.

    Tenants are session ids; each deployment registers (implicitly on
    first submit, or eagerly via :meth:`register` so fair shares are
    sized before traffic starts).  The scheduler is single-threaded and
    driven in rounds — submit any number of frames, :meth:`flush`, then
    :meth:`collect` each ticket — which keeps batch formation
    reproducible under a fixed seed.
    """

    def __init__(
        self,
        endpoint: EdgeEndpoint,
        service_model: ServiceTimeModel,
        config: Optional[SchedulerConfig] = None,
        recorder=None,
        shard: Optional[int] = None,
        registry=None,
    ) -> None:
        self.endpoint = endpoint
        self.service_model = service_model
        self.config = config if config is not None else SchedulerConfig()
        #: Fleet identity.  A bare scheduler (``shard=None``) keeps the
        #: historical unlabeled metric names; a fleet shard writes
        #: shard-labeled series (``sched.queue_depth{shard=2}``) into the
        #: router's shared ``registry`` so N shards never fold their
        #: telemetry into one series.
        self.shard = shard
        self.counters = SchedulerCounters(
            registry=registry,
            labels={"shard": shard} if shard is not None else None,
        )
        # Tracing: with an enabled recorder, every served request gets a
        # `sched.queue_wait` span and every trunk pass a `trunk.batch`
        # span (with a `trunk.worker[i]` child naming its worker lane)
        # on the "edge" track, correlated to the submitting session by
        # the trace id carried in the request frame.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: Simulated time at which each trunk worker next becomes free.
        self._worker_free = [0.0] * self.config.num_workers
        #: Queue-depth high-water gauge (samples queued at admission);
        #: consumers that want per-window readings (the fleet autoscaler)
        #: read it and reset it between windows.
        self.queue_depth_gauge = self.counters.registry.gauge(
            self.counters.metric_name("queue_depth")
        )
        #: Real thread pool for batch execution; its busy high-water
        #: feeds the `sched.workers_busy` gauge and counter.  The gauge
        #: is also read by :meth:`health` for the busy fraction.
        self.workers_busy_gauge = self.counters.registry.gauge(
            self.counters.metric_name("workers_busy")
        )
        self.worker_pool = WorkerPool(
            self.config.num_workers, gauge=self.workers_busy_gauge
        )
        self._queue: list[_Queued] = []
        self._results: dict[int, tuple[bytes, float]] = {}
        self._tickets = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._tenants: set[int] = set()
        # At-least-once delivery: a resubmission of the same (tenant,
        # sequences) pair must land on the same queue entry.
        self._dedupe: dict[tuple[int, tuple[int, ...]], int] = {}

    @classmethod
    def for_system(
        cls,
        system,
        service_model: Optional[ServiceTimeModel] = None,
        config: Optional[SchedulerConfig] = None,
        edge: DeviceProfile = EDGE_SERVER,
        recorder=None,
        shard: Optional[int] = None,
        registry=None,
    ) -> "EdgeScheduler":
        """A scheduler serving one calibrated LCRS system's trunk."""
        endpoint = EdgeEndpoint(system.model.main_trunk)
        if service_model is None:
            trunk_profile = NetworkProfile.of(
                system.model.main_trunk, system.model.stem_output_shape
            )
            service_model = ServiceTimeModel.from_profile(trunk_profile, edge=edge)
        return cls(
            endpoint, service_model, config, recorder=recorder,
            shard=shard, registry=registry,
        )

    # -- observability -------------------------------------------------
    @property
    def clock_ms(self) -> float:
        """Simulated time at which the whole trunk pool is next free.

        With one worker this is exactly the pre-pool scalar clock; with
        ``c`` workers it is the latest worker's free time (the makespan
        of everything executed so far).
        """
        return max(self._worker_free)

    @clock_ms.setter
    def clock_ms(self, value: float) -> None:
        self._worker_free = [float(value)] * len(self._worker_free)

    def register(self, tenant_id: int) -> None:
        self._tenants.add(int(tenant_id))

    @property
    def tenant_fair_share(self) -> int:
        """Max queued samples one tenant may hold (admission fairness)."""
        if self.config.max_per_tenant is not None:
            return self.config.max_per_tenant
        return max(1, self.config.queue_capacity // max(1, len(self._tenants)))

    def queued_samples(self, tenant: Optional[int] = None) -> int:
        return sum(
            q.samples for q in self._queue if tenant is None or q.tenant == tenant
        )

    def health(self) -> dict[str, object]:
        """JSON-ready operational snapshot of this scheduler.

        The per-shard panel of ``FleetRouter.health()`` and ``repro
        top``: instantaneous queue state plus the windowable wait
        summaries.  ``queue_depth`` is live (samples queued right now);
        ``queue_depth_hw`` is the high-water gauge the autoscaler reads
        and resets per round.
        """
        counters = self.counters
        wait_h = counters.request_wait_histogram
        return {
            "shard": self.shard,
            "clock_ms": self.clock_ms,
            "queue_depth": self.queued_samples(),
            "queue_depth_hw": self.queue_depth_gauge.value,
            "busy_fraction": (
                self.workers_busy_gauge.value / self.config.num_workers
                if self.config.num_workers
                else 0.0
            ),
            "num_workers": self.config.num_workers,
            "samples_served": counters.samples_served,
            "shed_samples": counters.shed_samples,
            "batches": counters.batches,
            "mean_queue_wait_ms": counters.mean_queue_wait_ms,
            "p99_queue_wait_ms": wait_h.p99,
            "tenants": len(self._tenants),
        }

    # -- admission -----------------------------------------------------
    def submit(self, frame: bytes, arrival_ms: float) -> bytes:
        """Admit (or refuse) one encoded miss-path frame.

        Returns an encoded :class:`SchedulerAck` on admission, or an
        :class:`ErrorResponse` — 400 for undecodable frames, 405 for
        non-batch messages, 503 when admission control sheds the
        request.  The 503 carries no ticket: the class ids will never
        come, and the client's retry policy (then binary-branch
        fallback) takes over.
        """
        counters = self.counters
        counters.submitted_requests += 1
        try:
            message = decode_frame(frame)
        except ProtocolError as exc:
            counters.malformed_requests += 1
            return encode_frame(ErrorResponse(code=400, message=str(exc)))
        if not isinstance(message, BatchInferenceRequest):
            counters.malformed_requests += 1
            return encode_frame(
                ErrorResponse(
                    code=405,
                    message=(
                        "scheduler serves batched inference only, got "
                        f"{type(message).__name__}"
                    ),
                )
            )
        tenant = int(message.session_id)
        self.register(tenant)
        n = len(message.sequences)
        counters.submitted_samples += n
        row = counters.tenant(tenant)
        row["submitted"] += n

        key = (tenant, message.sequences)
        if key in self._dedupe:
            # Duplicate delivery of an already-queued request: same
            # ticket, no new queue entry — submission is idempotent.
            return encode_frame(
                SchedulerAck(
                    session_id=tenant,
                    ticket=self._dedupe[key],
                    queued_samples=self.queued_samples(),
                )
            )
        if self.queued_samples() + n > self.config.queue_capacity:
            counters.shed_requests += 1
            counters.shed_samples += n
            row["shed"] += n
            return encode_frame(
                ErrorResponse(
                    code=503,
                    message=(
                        f"queue full: {self.queued_samples()}+{n} over "
                        f"{self.config.queue_capacity} samples"
                    ),
                )
            )
        held = self.queued_samples(tenant)
        # Fairness sheds a tenant's *additional* requests; a tenant with
        # nothing queued is never starved by the share arithmetic.
        if held > 0 and held + n > self.tenant_fair_share:
            counters.shed_requests += 1
            counters.shed_samples += n
            row["shed"] += n
            return encode_frame(
                ErrorResponse(
                    code=503,
                    message=(
                        f"tenant {tenant} over fair share: {held}+{n} over "
                        f"{self.tenant_fair_share} samples"
                    ),
                )
            )
        ticket = next(self._tickets)
        self._queue.append(
            _Queued(
                ticket=ticket,
                tenant=tenant,
                request=message,
                arrival_ms=float(arrival_ms),
            )
        )
        self._dedupe[key] = ticket
        counters.accepted_requests += 1
        counters.accepted_samples += n
        row["accepted"] += n
        depth = self.queued_samples()
        counters.max_queue_depth = max(counters.max_queue_depth, depth)
        self.queue_depth_gauge.set_max(depth)
        return encode_frame(
            SchedulerAck(session_id=tenant, ticket=ticket, queued_samples=depth)
        )

    # -- batch formation and execution ---------------------------------
    def _choose(self, eligible: list[_Queued]) -> tuple[list[_Queued], bool]:
        """Pick one batch from the window-eligible requests.

        The queue head (oldest arrival) is always taken — even if it
        alone exceeds ``max_batch_size``, so oversized requests cannot
        starve.  Remaining budget is filled round-robin across tenants
        in id order, one request per tenant per sweep, so no tenant's
        burst monopolizes a batch.  Returns ``(chosen, full)`` where
        ``full`` means the batch need not wait out the window (budget
        exhausted or eligible work left behind).
        """
        by_tenant: dict[int, list[_Queued]] = {}
        for q in eligible:
            by_tenant.setdefault(q.tenant, []).append(q)
        head = eligible[0]
        by_tenant[head.tenant].remove(head)
        chosen = [head]
        budget = self.config.max_batch_size - head.samples
        order = sorted(by_tenant)
        progressed = True
        while budget > 0 and progressed:
            progressed = False
            for tenant in order:
                rest = by_tenant[tenant]
                if rest and rest[0].samples <= budget:
                    q = rest.pop(0)
                    chosen.append(q)
                    budget -= q.samples
                    progressed = True
        full = budget <= 0 or len(chosen) < len(eligible)
        return chosen, full

    def _execute_batch(self, batch: _Batch) -> tuple[np.ndarray, float]:
        """Run one batch's real trunk pass (worker-pool task).

        Runs entirely on the pool thread with no shared lock: the engine
        is thread-safe end-to-end — no-grad mode is thread-local,
        kernel/geometry caches are locked, counters take atomic adds,
        and concurrent batches lease distinct compiled-plan instances
        from the endpoint's pool (see DESIGN.md §11).  Returns
        ``(logits, infer_wall_ms)``.
        """
        rec = self.recorder
        wall0 = now_ms() if rec.enabled else 0.0
        features = np.concatenate(
            [q.request.features() for q in batch.chosen], axis=0
        )
        logits = self.endpoint.infer(features)
        infer_wall_ms = now_ms() - wall0 if rec.enabled else 0.0
        return logits, infer_wall_ms

    def flush(self) -> list[int]:
        """Form and execute batches until the queue drains.

        Two phases.  *Formation* (serial, deterministic): batches are
        drawn from the queue exactly as a single-worker scheduler would
        draw them — membership depends only on arrivals and the window —
        and each is assigned to the earliest-free simulated worker
        (ties break on the lowest worker index), starting when its
        window closes — ``head arrival + window_ms`` — or as soon as
        its last member arrived if it filled up early, and never before
        its worker is free.  *Execution*: every batch is one real trunk
        pass over the concatenated feature stacks (predictions are
        bit-identical to per-request serving — the trunk's math is
        per-sample), run through the worker pool and priced once by the
        service model; replies are then routed serially in formation
        order.  Returns the served tickets in completion order.
        """
        served: list[int] = []
        cfg = self.config
        rec = self.recorder

        batches: list[_Batch] = []
        while self._queue:
            self._queue.sort(key=lambda q: (q.arrival_ms, q.ticket))
            head = self._queue[0]
            close = head.arrival_ms + cfg.window_ms
            eligible = [q for q in self._queue if q.arrival_ms <= close]
            chosen, full = self._choose(eligible)
            total = sum(q.samples for q in chosen)
            gate = max(q.arrival_ms for q in chosen) if full else close
            worker = min(
                range(len(self._worker_free)), key=lambda i: (self._worker_free[i], i)
            )
            start = max(self._worker_free[worker], gate)
            exec_ms = self.service_model.batch_ms(total)
            self._worker_free[worker] = start + exec_ms
            batches.append(
                _Batch(
                    batch_id=next(self._batch_ids),
                    worker=worker,
                    chosen=chosen,
                    total=total,
                    start_ms=start,
                    exec_ms=exec_ms,
                )
            )
            for q in chosen:
                self._queue.remove(q)

        outputs = self.worker_pool.map(self._execute_batch, batches)
        self.counters.max_workers_busy = max(
            self.counters.max_workers_busy, self.worker_pool.max_busy
        )

        for batch, (logits, infer_wall_ms) in zip(batches, outputs):
            # Same softmax/argmax math as EdgeProtocolServer's per-request
            # path, so scheduled answers match unscheduled ones bit-for-bit.
            probs = np.exp(logits - logits.max(axis=1, keepdims=True))
            probs /= probs.sum(axis=1, keepdims=True)
            class_ids = logits.argmax(axis=1)

            start = batch.start_ms
            waits = 0.0
            offset = 0
            for q in batch.chosen:
                ids = class_ids[offset : offset + q.samples]
                response = BatchInferenceResponse(
                    session_id=q.request.session_id,
                    sequences=q.request.sequences,
                    class_ids=tuple(int(c) for c in ids),
                    confidences=tuple(
                        float(probs[offset + i, c]) for i, c in enumerate(ids)
                    ),
                )
                wait = start - q.arrival_ms
                self._results[q.ticket] = (encode_frame(response), wait)
                self.counters.record_request_wait(wait)
                self.counters.tenant(q.tenant)["served"] += q.samples
                waits += wait * q.samples
                offset += q.samples
                served.append(q.ticket)
                self._dedupe.pop((q.tenant, q.request.sequences), None)
                if rec.enabled:
                    rec.add_span(
                        "sched.queue_wait",
                        track="edge",
                        trace_id=q.request.trace_id,
                        sim_start_ms=q.arrival_ms,
                        sim_ms=wait,
                        ticket=q.ticket,
                        tenant=q.tenant,
                        samples=q.samples,
                        batch=batch.batch_id,
                    )
            self.counters.record_batch(batch.total, batch.exec_ms, waits)
            if rec.enabled:
                batch_span = rec.add_span(
                    "trunk.batch",
                    track="edge",
                    sim_start_ms=start,
                    sim_ms=batch.exec_ms,
                    wall_ms=infer_wall_ms,
                    batch=batch.batch_id,
                    size=batch.total,
                    requests=len(batch.chosen),
                    worker=batch.worker,
                    tenants=sorted({q.tenant for q in batch.chosen}),
                    trace_ids=[
                        q.request.trace_id for q in batch.chosen if q.request.trace_id
                    ],
                )
                rec.add_span(
                    f"trunk.worker[{batch.worker}]",
                    track="edge",
                    sim_start_ms=start,
                    sim_ms=batch.exec_ms,
                    parent=batch_span,
                    batch=batch.batch_id,
                    size=batch.total,
                )
        return served

    # -- reply routing -------------------------------------------------
    def collect(self, ticket: int) -> tuple[bytes, float]:
        """Take one ticket's reply: ``(encoded frame, queue delay ms)``."""
        if ticket not in self._results:
            raise KeyError(f"no result for ticket {ticket}; flush() first")
        return self._results.pop(ticket)


def _browser_chunk_ms(ctx, browser_device: DeviceProfile, count: int) -> float:
    """Deterministic estimate of a chunk's local compute time.

    Arrival timestamps must not consume link RNG (that would perturb the
    latency pricing stream), so the submit time is the plan's browser
    compute steps alone — when the stem/branch work is done and the miss
    frame is ready to leave the device.
    """
    per_sample = sum(
        step.duration_ms(browser_device)
        for step in ctx.plan.per_sample_steps
        if isinstance(step, ComputeStep)
    )
    return per_sample * count


@dataclass
class _SessionState:
    """One concurrent session's progress through its image stream."""

    deployment: LCRSDeployment
    ctx: object
    images: np.ndarray
    clock_ms: float = 0.0
    cursor: int = 0

    def __post_init__(self) -> None:
        self.outcomes: list[RecognitionOutcome] = []
        self.costs: list[SampleCost] = []

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.images)


def run_concurrent_sessions(
    deployments: Sequence[LCRSDeployment],
    streams: Sequence[np.ndarray],
    scheduler: EdgeScheduler,
    config: Optional[SessionConfig] = None,
    recorder=None,
) -> list[SessionResult]:
    """Drive N sessions against one shared scheduler, in lockstep rounds.

    Each round, every unfinished session runs its next chunk's browser
    phase and submits its misses (with the full retry-then-fallback
    transport semantics of a private session); the scheduler then closes
    its windows and executes the round's dynamic batches; finally each
    session collects its correlated reply and prices the chunk — the
    scheduler's queueing delay lands on the missed samples' ``queue_ms``.
    Session clocks advance by their own chunks' total cost, so faster
    sessions drift ahead and arrivals stagger realistically while the
    whole run stays deterministic under fixed seeds.

    Predictions, entropies, and exit decisions are bit-identical to
    running each session alone against a private endpoint; only the
    timing (queue delays, amortized trunk passes) differs — with or
    without tracing.

    ``recorder`` (a :class:`~repro.observability.Tracer`) traces the
    whole run: each session's chunks on its own ``session-<id>`` track
    and the scheduler's queue waits and batched trunk passes on the
    shared ``edge`` track, correlated by the trace ids carried in the
    request frames.  It is installed on the scheduler for the run, so
    device- and edge-side spans land in one timeline.
    """
    if len(deployments) != len(streams):
        raise ValueError("need exactly one image stream per deployment")
    if recorder is not None:
        scheduler.recorder = recorder
    rec = scheduler.recorder
    cfg = config if config is not None else SessionConfig()
    # Session-level registry series (satellite of the SLO layer): who
    # served each sample and the running fallback fraction.  Bumped via
    # Counter.add so windowed watchers see every increment (a facade
    # `+=` would bypass them).  ``scheduler`` may be a FleetRouter,
    # which exposes ``registry`` directly and no shard identity (these
    # series aggregate the whole fleet; sessions move across shards).
    registry = getattr(scheduler, "registry", None)
    if registry is None:
        registry = scheduler.counters.registry
    shard = getattr(scheduler, "shard", None)
    session_labels = {"shard": shard} if shard is not None else {}
    samples_c = registry.counter(labeled("session.samples", **session_labels))
    fallback_c = registry.counter(
        labeled("session.fallback_samples", **session_labels)
    )
    fallback_rate_g = registry.gauge(
        labeled("session.fallback_rate", **session_labels)
    )
    served_by_c: dict[str, Counter] = {}
    sessions: list[_SessionState] = []
    for deployment, images in zip(deployments, streams):
        scheduler.register(deployment._session_id)
        sessions.append(
            _SessionState(
                deployment=deployment,
                ctx=deployment._session_context(cfg, recorder=rec),
                images=np.asarray(images),
            )
        )

    # Closed-loop τ control (the FleetRouter seam): when the scheduler
    # exposes per-session threshold/tier lookups, each round's chunks
    # gate with the controller's current values for the session's shard.
    # A bare scheduler — or a fleet without `enable_tau_control` — has
    # no lookups (or returns None), and the contexts are never touched,
    # which keeps static-τ runs bit-identical to pre-controller code.
    session_threshold = getattr(scheduler, "session_threshold", None)
    session_quality_tier = getattr(scheduler, "session_quality_tier", None)

    while not all(s.done for s in sessions):
        in_flight = []
        for s in sessions:
            if s.done:
                continue
            deployment = s.deployment
            if session_threshold is not None:
                tau = session_threshold(deployment._session_id)
                if tau is not None:
                    s.ctx.threshold = float(tau)
            if session_quality_tier is not None:
                tier = session_quality_tier(deployment._session_id)
                if tier is not None:
                    s.ctx.quality_tier = max(
                        1, min(int(tier), deployment.browser.max_quality_tier)
                    )
            pending = deployment._begin_chunk(s.images, s.cursor, s.ctx)
            ticket = None
            if pending.request is not None:
                arrival = s.clock_ms + _browser_chunk_ms(
                    s.ctx, deployment.browser_device, pending.count
                )
                ticket, attempts, retry_ms = deployment._submit_with_retry(
                    scheduler,
                    pending.request,
                    arrival,
                    link=s.ctx.link,
                    policy=s.ctx.policy,
                    recorder=rec,
                    trace_id=pending.trace_id,
                    track=s.ctx.track,
                    span_sink=pending.spans,
                )
                pending.attempts = attempts
                pending.retry_ms = retry_ms
                if ticket is None:
                    # Admission refused to exhaustion (or the link ate
                    # every attempt): the chunk degrades to the branch.
                    deployment._apply_reply(pending, None, attempts, retry_ms)
            in_flight.append((s, pending, ticket))

        scheduler.flush()

        for s, pending, ticket in in_flight:
            deployment = s.deployment
            if ticket is not None:
                raw, wait_ms = scheduler.collect(ticket)
                if rec.enabled:
                    with rec.span(
                        "codec.decode", track=s.ctx.track, trace_id=pending.trace_id
                    ):
                        try:
                            reply = decode_frame(raw)
                        except ProtocolError:
                            reply = None
                else:
                    try:
                        reply = decode_frame(raw)
                    except ProtocolError:
                        reply = None
                if reply is not None and deployment._reply_valid(
                    reply, pending.request, BatchInferenceResponse
                ):
                    pending.queue_ms = wait_ms
                    deployment._apply_reply(
                        reply=reply,
                        pending=pending,
                        attempts=pending.attempts,
                        retry_ms=pending.retry_ms,
                    )
                else:
                    deployment.fault_counters.replies_rejected += 1
                    deployment._apply_reply(
                        pending, None, pending.attempts, pending.retry_ms
                    )
                    deployment.fault_counters.fallbacks += 1
            deployment._finish_chunk(
                pending, s.ctx, s.outcomes, s.costs, sim_now=s.clock_ms
            )
            if pending.count:
                samples_c.add(pending.count)
                for outcome in s.outcomes[-pending.count :]:
                    who = outcome.served_by
                    counter = served_by_c.get(who)
                    if counter is None:
                        counter = registry.counter(
                            labeled(f"session.served_by.{who}", **session_labels)
                        )
                        served_by_c[who] = counter
                    counter.add(1)
                    if who == SERVED_BY_FALLBACK:
                        fallback_c.add(1)
                fallback_rate_g.set(
                    fallback_c.value / samples_c.value if samples_c.value else 0.0
                )
            s.clock_ms += sum(c.total_ms for c in s.costs[-pending.count :])
            s.cursor += pending.count

    telemetry = rec.summary() if rec.enabled else None
    return [
        SessionResult(
            outcomes=s.outcomes,
            trace=SessionTrace(
                approach="lcrs-scheduled",
                network=s.deployment.system.model.base_name,
                samples=s.costs,
            ),
            telemetry=telemetry,
        )
        for s in sessions
    ]
