"""Module/Parameter abstractions, in the familiar torch.nn style.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
supports train/eval mode switching, and exposes a flat ``state_dict`` for
serialization into the browser model format (:mod:`repro.wasm`).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .autograd import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable and discoverable by optimizers."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all network components.

    Subclasses implement :meth:`forward`; parameters and sub-modules are
    discovered automatically through attribute assignment, as in PyTorch.
    """

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Track a non-trainable array (e.g. batch-norm running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array mapping of parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays by name; shapes must match exactly."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, array in state.items():
            if name in params:
                target = params[name].data
            elif name in buffers:
                target = buffers[name]
            else:
                raise KeyError(f"unexpected key in state dict: {name!r}")
            if target.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"module has {target.shape}, state has {array.shape}"
                )
            target[...] = array

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.__class__.__name__
        if not child_lines:
            return f"{header}()"
        return f"{header}(\n" + "\n".join(child_lines) + "\n)"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self._modules[name] = module
            object.__setattr__(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self._modules[name] = module
        object.__setattr__(self, name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x
