"""Golden-trace regression: a frozen-seed run pinned to a committed fixture.

The fixture (``tests/golden/lenet_trace.json``) freezes what the tiny
LeNet system answered on a fixed 12-image stream — per-sample
predictions, exit decisions, who served each sample, and digests of the
entropies and priced costs.  Two runs are checked against it:

* the solo session (private endpoint, the seed path every PR inherits);
* a 2-session scheduled run on a 4-worker edge, which the determinism
  story promises is *bit-identical* in predictions/exits to solo.

Any drift — a kernel change, a scheduler reorder, a codec tweak, a
pricing change — fails here with a field-level diff instead of silently
shifting downstream numbers.  To regenerate after an intentional
behaviour change::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden_trace.py -m slow
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.runtime import (
    EdgeScheduler,
    LCRSDeployment,
    SchedulerConfig,
    SessionConfig,
    four_g,
    run_concurrent_sessions,
)

GOLDEN = Path(__file__).parent / "golden" / "lenet_trace.json"
SAMPLES = 12
LINK_SEED = 11
#: A tight threshold forces misses so the trace covers the edge path.
SESSION = dict(batch_size=4, threshold=0.05)


def _digest(values) -> str:
    """Order-sensitive digest of floats, rounded past platform noise."""
    h = hashlib.sha256()
    for v in values:
        h.update(f"{v:.6f};".encode())
    return h.hexdigest()


def _trace_record(system, session) -> dict:
    return {
        "network": system.model.base_name,
        "samples": len(session.outcomes),
        "predictions": [int(o.prediction) for o in session.outcomes],
        "exited_locally": [bool(o.exited_locally) for o in session.outcomes],
        "served_by": [o.served_by for o in session.outcomes],
        "entropy_digest": _digest(o.entropy for o in session.outcomes),
        "cost_digest": _digest(
            v
            for c in session.trace.samples
            for v in (c.total_ms, c.compute_ms, c.communication_ms)
        ),
    }


@pytest.fixture(scope="session")
def golden_images(tiny_mnist):
    _, test = tiny_mnist
    return test.images[:SAMPLES]


@pytest.fixture(scope="session")
def solo_record(trained_system, golden_images) -> dict:
    deployment = LCRSDeployment(trained_system, four_g(seed=LINK_SEED))
    session = deployment.run_session(
        golden_images, config=SessionConfig(**SESSION)
    )
    return _trace_record(trained_system, session)


@pytest.fixture(autouse=True)
def _maybe_regenerate(request):
    """With REPRO_REGEN_GOLDEN set, rewrite the fixture before checking."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        record = request.getfixturevalue("solo_record")
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(json.dumps(record, indent=2) + "\n")


@pytest.mark.slow
class TestGoldenTrace:
    def test_fixture_committed(self):
        assert GOLDEN.exists(), (
            f"{GOLDEN} missing — regenerate with REPRO_REGEN_GOLDEN=1 "
            "python -m pytest tests/test_golden_trace.py -m slow"
        )

    def test_solo_session_matches_golden(self, solo_record):
        golden = json.loads(GOLDEN.read_text())
        assert solo_record == golden

    def test_trace_exercises_both_paths(self, solo_record):
        """A golden trace that never misses (or never exits) pins nothing."""
        assert any(solo_record["exited_locally"])
        assert not all(solo_record["exited_locally"])

    @pytest.mark.plan
    def test_compiled_plans_match_golden(
        self, trained_system, golden_images, solo_record
    ):
        """The trace-compiled fused plans replay the frozen trace exactly.

        Both the interpreter path (``compile_plan=False``) and the
        compiled-plan path must reproduce the committed fixture
        field-for-field — predictions, exit decisions, serving sources,
        and the entropy/cost digests — so enabling plans can never move
        a golden number.
        """
        golden = json.loads(GOLDEN.read_text())
        for compile_plan in (False, True):
            deployment = LCRSDeployment(trained_system, four_g(seed=LINK_SEED))
            session = deployment.run_session(
                golden_images,
                config=SessionConfig(compile_plan=compile_plan, **SESSION),
            )
            assert _trace_record(trained_system, session) == golden, (
                f"compile_plan={compile_plan} drifted from the golden trace"
            )

    def test_four_worker_scheduled_run_matches_golden(
        self, trained_system, golden_images, solo_record
    ):
        """Two sessions on a 4-worker edge answer exactly like solo runs:
        predictions, exit decisions, and serving source all pinned."""
        deployments = [
            LCRSDeployment(trained_system, four_g(seed=LINK_SEED + i))
            for i in range(2)
        ]
        scheduler = EdgeScheduler.for_system(
            trained_system,
            config=SchedulerConfig(window_ms=0.0, num_workers=4),
        )
        results = run_concurrent_sessions(
            deployments,
            [golden_images] * 2,
            scheduler,
            config=SessionConfig(**SESSION),
        )
        for result in results:
            assert [int(o.prediction) for o in result.outcomes] == (
                solo_record["predictions"]
            )
            assert [bool(o.exited_locally) for o in result.outcomes] == (
                solo_record["exited_locally"]
            )
            assert [o.served_by for o in result.outcomes] == (
                solo_record["served_by"]
            )
            assert _digest(o.entropy for o in result.outcomes) == (
                solo_record["entropy_digest"]
            )
