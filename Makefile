# Developer entry points.  `make verify` is what CI should run: the
# tier-1 suite as-is, then again with the fault-injection smoke profile
# enabled so the degraded (retry/fallback) path is exercised end to end,
# then the hardening tier (protocol fuzz, codec properties, the frozen
# golden trace) and the tracing smoke run.  REPRO_FAULT_PROFILE selects
# the profile consumed by tests/test_faults.py (none | smoke | harsh |
# partition); REPRO_REGEN_GOLDEN=1 rewrites the golden-trace fixture
# after an intentional behaviour change.

PY ?= python
PYTEST = PYTHONPATH=src $(PY) -m pytest -x -q

.PHONY: test fault-smoke trace-smoke plan-smoke fleet-smoke obs-smoke tau-smoke golden stress verify bench bench-sched bench-par bench-par-wall bench-plan bench-fleet bench-tau bench-check bench-check-dry

test:
	$(PYTEST)

fault-smoke:
	REPRO_FAULT_PROFILE=smoke $(PYTEST) tests/test_faults.py tests/test_session.py tests/test_batched_session.py tests/test_session_protocol.py tests/test_protocol.py

trace-smoke:
	PYTHONPATH=src $(PY) benchmarks/trace_smoke.py

plan-smoke:
	$(PYTEST) -m plan tests/test_plan_properties.py tests/test_golden_trace.py

fleet-smoke:
	$(PYTEST) -m "fleet and not sched" tests/test_fleet.py

obs-smoke:
	$(PYTEST) -m obs tests/test_observability.py tests/test_windows.py tests/test_slo.py

tau-smoke:
	$(PYTEST) -m tau tests/test_tau_control.py tests/test_tiered_branch.py tests/test_golden_tau.py

golden:
	$(PYTEST) tests/test_protocol_fuzz.py tests/test_codec_properties.py tests/test_golden_trace.py tests/test_parallel.py

stress:
	$(PYTEST) -m par tests/test_thread_safety.py

verify: test fault-smoke golden stress trace-smoke plan-smoke fleet-smoke obs-smoke tau-smoke bench-check-dry

bench:
	PYTHONPATH=src $(PY) benchmarks/bench_kernels.py

bench-sched:
	PYTHONPATH=src $(PY) benchmarks/bench_scheduler.py

bench-par:
	PYTHONPATH=src $(PY) benchmarks/bench_parallel.py

bench-par-wall:
	REPRO_BENCH_WALL=1 PYTHONPATH=src $(PY) benchmarks/bench_parallel.py

bench-plan:
	PYTHONPATH=src $(PY) benchmarks/bench_plan.py

bench-fleet:
	PYTHONPATH=src $(PY) benchmarks/bench_fleet.py

bench-tau:
	PYTHONPATH=src $(PY) benchmarks/bench_tau.py

# Diff the committed BENCH_*.json headline ratios against their floors.
# bench-check requires the files; bench-check-dry tolerates missing ones
# (fresh clone) but still fails on a recorded regression.
bench-check:
	$(PY) benchmarks/bench_check.py

bench-check-dry:
	$(PY) benchmarks/bench_check.py --dry-run
