"""Byte-level browser↔edge message protocol.

The paper's library exchanges intermediate results over HTTP/WebSocket;
this module pins down the wire contract so the collaboration boundary is
byte-realistic: every message is a framed, versioned, self-describing
blob that either side can encode/decode without sharing Python objects.

Frame layout (little endian)::

    magic   b"LCRP"
    version u8
    type    u8           (MessageType)
    length  u32          payload bytes
    payload type-specific (see each message's pack/unpack)

Messages:

* ``InferenceRequest``  — browser → edge: conv1 features (through a
  :mod:`feature codec <repro.runtime.feature_codec>`), session/sequence
  ids for correlation.
* ``InferenceResponse`` — edge → browser: class id + confidence.
* ``BatchInferenceRequest`` / ``BatchInferenceResponse`` — the batched
  miss path: all uncertain samples of a processing batch travel in one
  frame (one header, one payload, one round trip) and come back as one
  vector of answers, keyed by per-sample sequence ids.
* ``ModelRequest`` / ``ModelResponse`` — bundle fetch at page load.
* ``ErrorResponse``     — structured failure (unknown codec, bad shape);
  the shared edge scheduler also uses it for overload shedding (503).
* ``SchedulerAck``      — edge → browser: a batched miss request was
  admitted to the shared scheduler queue; the correlated
  ``BatchInferenceResponse`` follows once its dynamic batch executes.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Union

import numpy as np

from .feature_codec import FEATURE_CODECS, get_codec

MAGIC = b"LCRP"
PROTOCOL_VERSION = 1
_HEADER = struct.Struct("<4sBBI")


class ProtocolError(ValueError):
    """Raised on malformed frames."""


class MessageType(enum.IntEnum):
    INFERENCE_REQUEST = 1
    INFERENCE_RESPONSE = 2
    MODEL_REQUEST = 3
    MODEL_RESPONSE = 4
    ERROR = 5
    BATCH_INFERENCE_REQUEST = 6
    BATCH_INFERENCE_RESPONSE = 7
    SCHEDULER_ACK = 8


@dataclass(frozen=True)
class InferenceRequest:
    """Browser → edge: classify these conv1 features."""

    session_id: int
    sequence: int
    codec: str
    feature_shape: tuple[int, ...]
    payload: bytes

    type = MessageType.INFERENCE_REQUEST

    def pack(self) -> bytes:
        header = json.dumps(
            {
                "session_id": self.session_id,
                "sequence": self.sequence,
                "codec": self.codec,
                "shape": list(self.feature_shape),
            }
        ).encode("utf-8")
        return struct.pack("<I", len(header)) + header + self.payload

    @classmethod
    def unpack(cls, body: bytes) -> "InferenceRequest":
        if len(body) < 4:
            raise ProtocolError("truncated inference request")
        (hlen,) = struct.unpack("<I", body[:4])
        if len(body) < 4 + hlen:
            raise ProtocolError("truncated inference request header")
        try:
            meta = json.loads(body[4 : 4 + hlen].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"bad request header: {exc}") from exc
        try:
            return cls(
                session_id=int(meta["session_id"]),
                sequence=int(meta["sequence"]),
                codec=str(meta["codec"]),
                feature_shape=tuple(int(d) for d in meta["shape"]),
                payload=body[4 + hlen :],
            )
        except (KeyError, TypeError, ValueError) as exc:
            # Valid JSON, wrong schema (missing/mistyped fields): still a
            # malformed frame, not a server crash.
            raise ProtocolError(f"bad request header fields: {exc!r}") from exc

    def features(self) -> np.ndarray:
        """Decode the carried tensor through the named codec."""
        return get_codec(self.codec).decode(self.payload, self.feature_shape)

    @classmethod
    def from_features(
        cls, session_id: int, sequence: int, codec_name: str, features: np.ndarray
    ) -> "InferenceRequest":
        codec = get_codec(codec_name)
        return cls(
            session_id=session_id,
            sequence=sequence,
            codec=codec_name,
            feature_shape=tuple(features.shape),
            payload=codec.encode(features),
        )


@dataclass(frozen=True)
class InferenceResponse:
    """Edge → browser: the main branch's answer."""

    session_id: int
    sequence: int
    class_id: int
    confidence: float

    type = MessageType.INFERENCE_RESPONSE
    _BODY = struct.Struct("<QQif")

    def pack(self) -> bytes:
        return self._BODY.pack(
            self.session_id, self.sequence, self.class_id, self.confidence
        )

    @classmethod
    def unpack(cls, body: bytes) -> "InferenceResponse":
        if len(body) != cls._BODY.size:
            raise ProtocolError("bad inference response size")
        session_id, sequence, class_id, confidence = cls._BODY.unpack(body)
        return cls(session_id, sequence, class_id, confidence)


@dataclass(frozen=True)
class BatchInferenceRequest:
    """Browser → edge: classify this stack of conv1 feature maps.

    The payload carries one codec-encoded ``(M, C, H, W)`` tensor — the
    miss-path samples of a processing batch — so M collaborative samples
    cost one frame and one round trip instead of M.

    ``trace_id`` correlates the request with the submitting session's
    trace (see :mod:`repro.observability.tracing`); it rides in the JSON
    header only when set, so untraced frames are byte-identical to the
    pre-tracing wire format and old decoders remain compatible.
    """

    session_id: int
    sequences: tuple[int, ...]
    codec: str
    feature_shape: tuple[int, ...]
    payload: bytes
    trace_id: str = ""

    type = MessageType.BATCH_INFERENCE_REQUEST

    def pack(self) -> bytes:
        meta: dict[str, object] = {
            "session_id": self.session_id,
            "sequences": list(self.sequences),
            "codec": self.codec,
            "shape": list(self.feature_shape),
        }
        if self.trace_id:
            meta["trace_id"] = self.trace_id
        header = json.dumps(meta).encode("utf-8")
        return struct.pack("<I", len(header)) + header + self.payload

    @classmethod
    def unpack(cls, body: bytes) -> "BatchInferenceRequest":
        if len(body) < 4:
            raise ProtocolError("truncated batch inference request")
        (hlen,) = struct.unpack("<I", body[:4])
        if len(body) < 4 + hlen:
            raise ProtocolError("truncated batch inference request header")
        try:
            meta = json.loads(body[4 : 4 + hlen].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"bad batch request header: {exc}") from exc
        try:
            return cls(
                session_id=int(meta["session_id"]),
                sequences=tuple(int(s) for s in meta["sequences"]),
                codec=str(meta["codec"]),
                feature_shape=tuple(int(d) for d in meta["shape"]),
                payload=body[4 + hlen :],
                trace_id=str(meta.get("trace_id", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            # Valid JSON, wrong schema (missing/mistyped fields): still a
            # malformed frame, not a server crash.
            raise ProtocolError(f"bad batch request header fields: {exc!r}") from exc

    def features(self) -> np.ndarray:
        """Decode the carried feature stack through the named codec.

        The sequences/shape invariant is checked *before* decoding so a
        malformed header fails with this message, not a codec exception.
        """
        if len(self.feature_shape) < 1 or self.feature_shape[0] != len(self.sequences):
            raise ProtocolError(
                f"batch of {len(self.sequences)} sequences carries feature "
                f"stack of shape {self.feature_shape}"
            )
        return get_codec(self.codec).decode(self.payload, self.feature_shape)

    @classmethod
    def from_features(
        cls,
        session_id: int,
        sequences: "tuple[int, ...] | list[int]",
        codec_name: str,
        features: np.ndarray,
        trace_id: str = "",
    ) -> "BatchInferenceRequest":
        if features.ndim < 1 or features.shape[0] != len(sequences):
            raise ValueError(
                f"{len(sequences)} sequences but feature stack of shape "
                f"{features.shape}"
            )
        codec = get_codec(codec_name)
        return cls(
            session_id=session_id,
            sequences=tuple(int(s) for s in sequences),
            codec=codec_name,
            feature_shape=tuple(features.shape),
            payload=codec.encode(features),
            trace_id=trace_id,
        )


@dataclass(frozen=True)
class BatchInferenceResponse:
    """Edge → browser: per-sample answers for one batched request."""

    session_id: int
    sequences: tuple[int, ...]
    class_ids: tuple[int, ...]
    confidences: tuple[float, ...]

    type = MessageType.BATCH_INFERENCE_RESPONSE
    _HEAD = struct.Struct("<QI")

    def pack(self) -> bytes:
        count = len(self.sequences)
        if len(self.class_ids) != count or len(self.confidences) != count:
            raise ProtocolError("batch response field lengths differ")
        return (
            self._HEAD.pack(self.session_id, count)
            + np.asarray(self.sequences, dtype="<u8").tobytes()
            + np.asarray(self.class_ids, dtype="<i4").tobytes()
            + np.asarray(self.confidences, dtype="<f4").tobytes()
        )

    @classmethod
    def unpack(cls, body: bytes) -> "BatchInferenceResponse":
        if len(body) < cls._HEAD.size:
            raise ProtocolError("truncated batch inference response")
        session_id, count = cls._HEAD.unpack(body[: cls._HEAD.size])
        expected = cls._HEAD.size + count * (8 + 4 + 4)
        if len(body) != expected:
            raise ProtocolError(
                f"bad batch response size: expected {expected}B, got {len(body)}B"
            )
        offset = cls._HEAD.size
        sequences = np.frombuffer(body, dtype="<u8", count=count, offset=offset)
        offset += count * 8
        class_ids = np.frombuffer(body, dtype="<i4", count=count, offset=offset)
        offset += count * 4
        confidences = np.frombuffer(body, dtype="<f4", count=count, offset=offset)
        return cls(
            session_id=session_id,
            sequences=tuple(int(s) for s in sequences),
            class_ids=tuple(int(c) for c in class_ids),
            confidences=tuple(float(c) for c in confidences),
        )


@dataclass(frozen=True)
class SchedulerAck:
    """Edge → browser: batched miss request admitted to the scheduler.

    The answer is *deferred*: the scheduler aggregates admitted requests
    from many sessions into one dynamic batch, so the ack only promises
    that a correlated :class:`BatchInferenceResponse` (same session id
    and sequences) will follow.  ``ticket`` identifies the queue entry —
    resubmitting the same request (at-least-once delivery) returns the
    same ticket.  ``queued_samples`` reports the queue depth at
    admission, for client-side observability.
    """

    session_id: int
    ticket: int
    queued_samples: int

    type = MessageType.SCHEDULER_ACK
    _BODY = struct.Struct("<QQI")

    def pack(self) -> bytes:
        return self._BODY.pack(self.session_id, self.ticket, self.queued_samples)

    @classmethod
    def unpack(cls, body: bytes) -> "SchedulerAck":
        if len(body) != cls._BODY.size:
            raise ProtocolError("bad scheduler ack size")
        session_id, ticket, queued = cls._BODY.unpack(body)
        return cls(session_id=session_id, ticket=ticket, queued_samples=queued)


@dataclass(frozen=True)
class ModelRequest:
    """Browser → edge: fetch a named bundle (page-load path)."""

    bundle_name: str

    type = MessageType.MODEL_REQUEST

    def pack(self) -> bytes:
        return self.bundle_name.encode("utf-8")

    @classmethod
    def unpack(cls, body: bytes) -> "ModelRequest":
        try:
            return cls(bundle_name=body.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad model request name") from exc


@dataclass(frozen=True)
class ModelResponse:
    """Edge → browser: the requested ``.lcrs`` payload."""

    bundle_name: str
    payload: bytes

    type = MessageType.MODEL_RESPONSE

    def pack(self) -> bytes:
        name = self.bundle_name.encode("utf-8")
        return struct.pack("<I", len(name)) + name + self.payload

    @classmethod
    def unpack(cls, body: bytes) -> "ModelResponse":
        if len(body) < 4:
            raise ProtocolError("truncated model response")
        (nlen,) = struct.unpack("<I", body[:4])
        if len(body) < 4 + nlen:
            raise ProtocolError("truncated model response name")
        try:
            name = body[4 : 4 + nlen].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad model response name") from exc
        return cls(bundle_name=name, payload=body[4 + nlen :])


@dataclass(frozen=True)
class ErrorResponse:
    """Edge → browser: structured failure."""

    code: int
    message: str

    type = MessageType.ERROR

    def pack(self) -> bytes:
        return struct.pack("<I", self.code) + self.message.encode("utf-8")

    @classmethod
    def unpack(cls, body: bytes) -> "ErrorResponse":
        if len(body) < 4:
            raise ProtocolError("truncated error response")
        (code,) = struct.unpack("<I", body[:4])
        return cls(code=code, message=body[4:].decode("utf-8", errors="replace"))


Message = Union[
    InferenceRequest,
    InferenceResponse,
    BatchInferenceRequest,
    BatchInferenceResponse,
    ModelRequest,
    ModelResponse,
    ErrorResponse,
    SchedulerAck,
]

_DECODERS = {
    MessageType.INFERENCE_REQUEST: InferenceRequest.unpack,
    MessageType.INFERENCE_RESPONSE: InferenceResponse.unpack,
    MessageType.BATCH_INFERENCE_REQUEST: BatchInferenceRequest.unpack,
    MessageType.BATCH_INFERENCE_RESPONSE: BatchInferenceResponse.unpack,
    MessageType.MODEL_REQUEST: ModelRequest.unpack,
    MessageType.MODEL_RESPONSE: ModelResponse.unpack,
    MessageType.ERROR: ErrorResponse.unpack,
    MessageType.SCHEDULER_ACK: SchedulerAck.unpack,
}


def encode_frame(message: Message) -> bytes:
    """Wrap a message in the versioned wire frame."""
    body = message.pack()
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, int(message.type), len(body)) + body


def decode_frame(frame: bytes) -> Message:
    """Parse one frame; raises :class:`ProtocolError` on any corruption."""
    if len(frame) < _HEADER.size:
        raise ProtocolError("frame shorter than header")
    magic, version, mtype, length = _HEADER.unpack(frame[: _HEADER.size])
    if magic != MAGIC:
        raise ProtocolError("bad magic")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    body = frame[_HEADER.size :]
    if len(body) != length:
        raise ProtocolError(f"frame length mismatch: header says {length}, got {len(body)}")
    try:
        decoder = _DECODERS[MessageType(mtype)]
    except ValueError as exc:
        raise ProtocolError(f"unknown message type {mtype}") from exc
    return decoder(body)


class EdgeProtocolServer:
    """Message-level façade over an :class:`~repro.runtime.session.EdgeEndpoint`.

    ``handle`` consumes one encoded frame and returns one encoded frame —
    the same contract an HTTP handler would satisfy, so the deployment
    story can be tested end to end at byte granularity.
    """

    def __init__(self, endpoint, bundles: dict[str, bytes] | None = None) -> None:
        self.endpoint = endpoint
        self.bundles = dict(bundles or {})

    def handle(self, frame: bytes) -> bytes:
        try:
            message = decode_frame(frame)
        except ProtocolError as exc:
            return encode_frame(ErrorResponse(code=400, message=str(exc)))

        if isinstance(message, InferenceRequest):
            try:
                features = message.features()
            except Exception as exc:  # codec/shape errors become 422s
                return encode_frame(ErrorResponse(code=422, message=str(exc)))
            try:
                logits = self.endpoint.infer(features)
                probs = np.exp(logits - logits.max(axis=1, keepdims=True))
                probs /= probs.sum(axis=1, keepdims=True)
                class_id = int(logits.argmax(axis=1)[0])
                response = InferenceResponse(
                    session_id=message.session_id,
                    sequence=message.sequence,
                    class_id=class_id,
                    confidence=float(probs[0, class_id]),
                )
            except Exception as exc:  # endpoint failures stay on the wire
                return encode_frame(
                    ErrorResponse(code=500, message=f"inference failed: {exc}")
                )
            return encode_frame(response)
        if isinstance(message, BatchInferenceRequest):
            try:
                features = message.features()
            except Exception as exc:  # codec/shape errors become 422s
                return encode_frame(ErrorResponse(code=422, message=str(exc)))
            try:
                logits = self.endpoint.infer(features)
                probs = np.exp(logits - logits.max(axis=1, keepdims=True))
                probs /= probs.sum(axis=1, keepdims=True)
                class_ids = logits.argmax(axis=1)
                response = BatchInferenceResponse(
                    session_id=message.session_id,
                    sequences=message.sequences,
                    class_ids=tuple(int(c) for c in class_ids),
                    confidences=tuple(
                        float(probs[i, c]) for i, c in enumerate(class_ids)
                    ),
                )
            except Exception as exc:  # endpoint failures stay on the wire
                return encode_frame(
                    ErrorResponse(code=500, message=f"batch inference failed: {exc}")
                )
            return encode_frame(response)
        if isinstance(message, ModelRequest):
            payload = self.bundles.get(message.bundle_name)
            if payload is None:
                return encode_frame(
                    ErrorResponse(code=404, message=f"no bundle {message.bundle_name!r}")
                )
            return encode_frame(
                ModelResponse(bundle_name=message.bundle_name, payload=payload)
            )
        return encode_frame(
            ErrorResponse(code=405, message=f"cannot serve {type(message).__name__}")
        )
