"""Kernel and serving-path micro-benchmarks → ``BENCH_kernels.json``.

Measures the two layers of the batched inference engine:

1. **Kernel** — blocked XNOR-popcount ``packed_dot`` GOPS (binary ops/s,
   counting each ±1 multiply-accumulate as 2 ops) on branch-conv-shaped
   operands, against a naive unblocked broadcast kernel (the pre-blocking
   implementation) whose temp memory grows as ``p·q·bytes``.
2. **Session** — end-to-end ``LCRSDeployment.run_session`` throughput on
   a calibrated LeNet system: the per-sample loop vs the batched path at
   batch 64 (one stem/branch pass per chunk, misses in one protocol
   frame).

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/bench_kernels.py

Results land in ``BENCH_kernels.json`` at the repo root so later PRs
have a perf baseline to compare against.  Wall-clock numbers are
machine-dependent; the JSON records shapes and block sizes so runs are
comparable like-for-like.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"

SESSION_BATCH = 64
SESSION_REPEATS = 3
KERNEL_REPEATS = 5


def _best_seconds(fn, repeats: int) -> float:
    """Best-of-N wall time; best is the standard micro-bench estimator."""
    from repro.observability.clock import now_s

    best = float("inf")
    for _ in range(repeats):
        t0 = now_s()
        fn()
        best = min(best, now_s() - t0)
    return best


def naive_packed_dot(va, vb, mask=None, length=None):
    """The pre-blocking broadcast kernel, kept here as the comparison
    baseline: allocates the full (p, q, bytes) XOR temp in one go."""
    xor = np.bitwise_xor(va[:, None, :], vb[None, :, :])
    if mask is not None:
        mismatches = np.bitwise_count(np.bitwise_and(xor, mask[:, None, :])).sum(
            axis=2, dtype=np.int64
        )
        valid = np.bitwise_count(mask).sum(axis=1, dtype=np.int64)[:, None]
        return (valid - 2 * mismatches).astype(np.float32)
    mismatches = np.bitwise_count(xor).sum(axis=2, dtype=np.int64)
    return (length - 2 * mismatches).astype(np.float32)


def bench_kernel() -> dict:
    """GOPS of the blocked kernel vs the naive broadcast kernel."""
    from repro.wasm.bitpack import DEFAULT_BLOCK_BYTES, last_dot_stats, packed_dot

    # Branch-conv-shaped operands: p = batch·OH·OW im2col rows of
    # c·k·k = 1152 bits, q = 128 binary filters.
    p, q, bits = 64 * 14 * 14, 128, 128 * 3 * 3
    rng = np.random.default_rng(0)
    va = rng.integers(0, 256, size=(p, (bits + 7) // 8), dtype=np.uint8)
    vb = rng.integers(0, 256, size=(q, (bits + 7) // 8), dtype=np.uint8)
    binary_ops = 2.0 * p * q * bits

    blocked_s = _best_seconds(
        lambda: packed_dot(va, vb, length=bits), KERNEL_REPEATS
    )
    packed_dot(va, vb, length=bits)  # refresh stats for the record below
    stats = last_dot_stats()
    naive_s = _best_seconds(lambda: naive_packed_dot(va, vb, length=bits), 2)
    naive_temp = p * q * va.shape[1]  # the (p, q, bytes) XOR broadcast

    np.testing.assert_array_equal(
        packed_dot(va, vb, length=bits), naive_packed_dot(va, vb, length=bits)
    )

    return {
        "shape": {"p": p, "q": q, "bits": bits},
        "block_bytes": DEFAULT_BLOCK_BYTES,
        "blocked": {
            "seconds": blocked_s,
            "gops": binary_ops / blocked_s / 1e9,
            "peak_temp_bytes": stats.peak_temp_bytes,
            "tiles": stats.tile_count,
        },
        "naive_broadcast": {
            "seconds": naive_s,
            "gops": binary_ops / naive_s / 1e9,
            "peak_temp_bytes": naive_temp,
        },
        "speedup": naive_s / blocked_s,
        "temp_memory_ratio": naive_temp / stats.peak_temp_bytes,
    }


def _build_system():
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset

    train, test = make_dataset("mnist", 600, 200, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(
            epochs=4, batch_size=64, lr_main=2e-3, seed=0
        ),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)
    return system, test


def bench_session() -> dict:
    """Batched vs per-sample run_session throughput (samples/s).

    Both cells pin ``compile_plan=False`` so this stays the pure
    *interpreter* baseline; the compiled-plan speedup over it is
    measured separately by ``benchmarks/bench_plan.py``.
    """
    from repro.runtime import LCRSDeployment, SessionConfig, four_g

    system, test = _build_system()
    deployment = LCRSDeployment(system, four_g(seed=0).deterministic())
    images = test.images[:SESSION_BATCH]
    scalar_cfg = SessionConfig(compile_plan=False)
    batched_cfg = SessionConfig(batch_size=SESSION_BATCH, compile_plan=False)

    # Warm both paths (first call pays page-load setup bookkeeping and
    # any lazy numpy initialisation).
    deployment.run_session(images[:8], config=scalar_cfg)
    deployment.run_session(images[:8], config=SessionConfig(batch_size=8, compile_plan=False))

    scalar_s = _best_seconds(
        lambda: deployment.run_session(images, config=scalar_cfg), SESSION_REPEATS
    )
    batched_s = _best_seconds(
        lambda: deployment.run_session(images, config=batched_cfg),
        SESSION_REPEATS,
    )

    scalar = deployment.run_session(images, config=scalar_cfg)
    batched = deployment.run_session(images, config=batched_cfg)
    assert (scalar.predictions == batched.predictions).all(), "paths disagree"

    # Per-op engine counters of the batched run: where the time goes.
    deployment.browser.stem_engine.reset_counters()
    deployment.browser.branch_engine.reset_counters()
    deployment.run_session(images, config=batched_cfg)

    return {
        "network": "lenet",
        "num_samples": SESSION_BATCH,
        "batch_size": SESSION_BATCH,
        "exit_rate": scalar.exit_rate,
        "per_sample": {
            "seconds": scalar_s,
            "samples_per_s": SESSION_BATCH / scalar_s,
        },
        "batched": {
            "seconds": batched_s,
            "samples_per_s": SESSION_BATCH / batched_s,
        },
        "speedup": scalar_s / batched_s,
        "stem_op_counters": deployment.browser.stem_engine.counters.summary(),
        "branch_op_counters": deployment.browser.branch_engine.counters.summary(),
    }


def main() -> dict:
    results = {
        "benchmark": "bench_kernels",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "kernel_packed_dot": bench_kernel(),
        "session_throughput": bench_session(),
    }
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    kernel = results["kernel_packed_dot"]
    session = results["session_throughput"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"packed_dot: blocked {kernel['blocked']['gops']:.1f} GOPS "
        f"(peak temp {kernel['blocked']['peak_temp_bytes'] / 1e6:.1f} MB) vs "
        f"naive {kernel['naive_broadcast']['gops']:.1f} GOPS "
        f"(temp {kernel['naive_broadcast']['peak_temp_bytes'] / 1e6:.1f} MB) — "
        f"{kernel['speedup']:.2f}x faster, "
        f"{kernel['temp_memory_ratio']:.0f}x less temp memory"
    )
    print(
        f"run_session (LeNet, {session['num_samples']} samples): "
        f"per-sample {session['per_sample']['samples_per_s']:.1f} samples/s, "
        f"batched (batch {session['batch_size']}) "
        f"{session['batched']['samples_per_s']:.1f} samples/s — "
        f"{session['speedup']:.2f}x"
    )
    return results


if __name__ == "__main__":
    main()
