"""Figure 4 harness: accuracy & model size vs binary-branch structure.

§IV-D.3 sweeps the branch design space on an AlexNet main branch:

* Figure 4(a) — ``n`` binary *conv* layers + one binary FC layer;
* Figure 4(b) — one binary conv layer + ``n`` binary *FC* layers.

The paper's finding: more binary conv layers hurt accuracy for little
size gain, while one or two binary FC layers are the sweet spot.  This
harness joint-trains each structure and reports (accuracy, bundle KB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.composite import BinaryBranchConfig
from ..core.system import LCRS
from ..core.training import JointTrainingConfig
from ..data import make_dataset
from .reporting import render_table, shape_check
from .scale import ExperimentScale, QUICK


@dataclass(frozen=True)
class StructurePoint:
    """One structure's measured outcome."""

    num_conv_layers: int
    num_fc_layers: int
    binary_accuracy: float
    main_accuracy: float
    bundle_bytes: int


@dataclass
class Figure4Result:
    """Both sweeps, with the paper's qualitative checks."""

    conv_sweep: list[StructurePoint] = field(default_factory=list)
    fc_sweep: list[StructurePoint] = field(default_factory=list)
    network: str = "alexnet"
    dataset: str = "cifar10"

    def render(self) -> str:
        def rows(points: list[StructurePoint]) -> list[list[object]]:
            return [
                [
                    f"conv={p.num_conv_layers} fc={p.num_fc_layers}",
                    f"{100 * p.binary_accuracy:.1f}",
                    f"{100 * p.main_accuracy:.1f}",
                    f"{p.bundle_bytes / 1024:.0f}",
                ]
                for p in points
            ]

        a = render_table(
            ["structure", "B_Acc%", "M_Acc%", "bundle(KB)"],
            rows(self.conv_sweep),
            title=f"Figure 4(a) — binary conv sweep ({self.network}/{self.dataset})",
        )
        b = render_table(
            ["structure", "B_Acc%", "M_Acc%", "bundle(KB)"],
            rows(self.fc_sweep),
            title=f"Figure 4(b) — binary FC sweep ({self.network}/{self.dataset})",
        )
        return a + "\n\n" + b

    def shape_checks(self) -> list[str]:
        lines = []
        if len(self.conv_sweep) >= 2:
            first, last = self.conv_sweep[0], self.conv_sweep[-1]
            lines.append(
                shape_check(
                    "stacking binary conv layers does not improve accuracy "
                    f"({100 * first.binary_accuracy:.1f}% → "
                    f"{100 * last.binary_accuracy:.1f}%)",
                    last.binary_accuracy <= first.binary_accuracy + 0.03,
                )
            )
        if len(self.fc_sweep) >= 2:
            best_fc = max(self.fc_sweep, key=lambda p: p.binary_accuracy)
            lines.append(
                shape_check(
                    "one or two binary FC layers are the accuracy sweet spot "
                    f"(best at fc={best_fc.num_fc_layers})",
                    best_fc.num_fc_layers <= 2,
                )
            )
        return lines


def _measure_structure(
    config: BinaryBranchConfig,
    network: str,
    dataset: str,
    scale: ExperimentScale,
    seed: int,
) -> StructurePoint:
    n_train, n_test = scale.samples_for(dataset)
    train, test = make_dataset(dataset, n_train, n_test, seed=seed)
    system = LCRS.build(
        network,
        train,
        branch_config=config,
        training_config=JointTrainingConfig(
            epochs=scale.epochs_for(network), batch_size=scale.batch_size, seed=seed
        ),
        dataset_name=dataset,
        seed=seed,
    )
    system.fit(train)
    main_acc, binary_acc = system.trainer.evaluate(test)
    return StructurePoint(
        num_conv_layers=config.num_conv_layers,
        num_fc_layers=config.num_fc_layers,
        binary_accuracy=binary_acc,
        main_accuracy=main_acc,
        bundle_bytes=system.binary_size_bytes(),
    )


def run_figure4(
    network: str = "alexnet",
    dataset: str = "cifar10",
    conv_depths: Sequence[int] = (1, 2, 3),
    fc_depths: Sequence[int] = (1, 2, 3),
    scale: ExperimentScale = QUICK,
    seed: int = 0,
    channels: int = 32,
    hidden: int = 128,
    verbose: bool = False,
) -> Figure4Result:
    """Regenerate both Figure 4 sweeps."""
    result = Figure4Result(network=network, dataset=dataset)
    for n in conv_depths:
        if verbose:
            print(f"[fig4] conv sweep n={n} ...", flush=True)
        result.conv_sweep.append(
            _measure_structure(
                BinaryBranchConfig(
                    num_conv_layers=n, num_fc_layers=1, channels=channels, hidden=hidden
                ),
                network,
                dataset,
                scale,
                seed,
            )
        )
    for n in fc_depths:
        if verbose:
            print(f"[fig4] fc sweep n={n} ...", flush=True)
        result.fc_sweep.append(
            _measure_structure(
                BinaryBranchConfig(
                    num_conv_layers=1, num_fc_layers=n, channels=channels, hidden=hidden
                ),
                network,
                dataset,
                scale,
                seed,
            )
        )
    return result
