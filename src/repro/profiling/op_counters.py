"""Lightweight per-op runtime counters for the browser inference engine.

The latency *model* (:mod:`repro.runtime.latency`) prices plans
analytically; these counters measure what the engine actually did —
calls, samples, wall time, and bytes run through the popcount unit — so
kernel work can be attributed per layer and benchmark trajectories
(``BENCH_*.json``) have a stable schema to draw from.  Recording is a
handful of float adds per op call, cheap enough to stay always-on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Accumulated runtime statistics for one compiled op."""

    index: int
    kind: str
    calls: int = 0
    samples: int = 0
    wall_ms: float = 0.0
    bytes_popcounted: int = 0

    def record(self, samples: int, wall_ms: float, bytes_popcounted: int = 0) -> None:
        self.calls += 1
        self.samples += samples
        self.wall_ms += wall_ms
        self.bytes_popcounted += bytes_popcounted

    def reset(self) -> None:
        self.calls = 0
        self.samples = 0
        self.wall_ms = 0.0
        self.bytes_popcounted = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "calls": self.calls,
            "samples": self.samples,
            "wall_ms": self.wall_ms,
            "bytes_popcounted": self.bytes_popcounted,
        }


@dataclass
class ModelCounters:
    """Per-op counters for one engine instance, in execution order."""

    ops: list[OpCounter] = field(default_factory=list)

    @classmethod
    def for_kinds(cls, kinds: list[str]) -> "ModelCounters":
        return cls(ops=[OpCounter(index=i, kind=k) for i, k in enumerate(kinds)])

    def reset(self) -> None:
        for op in self.ops:
            op.reset()

    @property
    def total_calls(self) -> int:
        return sum(op.calls for op in self.ops)

    @property
    def total_wall_ms(self) -> float:
        return sum(op.wall_ms for op in self.ops)

    @property
    def total_bytes_popcounted(self) -> int:
        return sum(op.bytes_popcounted for op in self.ops)

    def summary(self) -> list[dict[str, object]]:
        """JSON-ready per-op rows (the ``BENCH_*.json`` schema)."""
        return [op.as_dict() for op in self.ops]


@dataclass
class FaultCounters:
    """Miss-path transport failure/recovery statistics for one deployment.

    The session layer bumps these as collaborative frames travel the
    (possibly faulty) link: every attempt is a ``frames_sent``; failures
    split by cause; ``retries`` counts re-sends after a failure; and
    ``fallbacks`` counts samples/chunks that exhausted the retry policy
    and were answered by the local binary branch instead.
    """

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_timed_out: int = 0
    frames_corrupted: int = 0
    frames_duplicated: int = 0
    edge_errors: int = 0
    replies_rejected: int = 0
    retries: int = 0
    fallbacks: int = 0

    @property
    def failures(self) -> int:
        """Attempts that did not yield a valid reply."""
        return (
            self.frames_dropped
            + self.frames_timed_out
            + self.edge_errors
            + self.replies_rejected
        )

    def reset(self) -> None:
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_timed_out = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.edge_errors = 0
        self.replies_rejected = 0
        self.retries = 0
        self.fallbacks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_dropped": self.frames_dropped,
            "frames_timed_out": self.frames_timed_out,
            "frames_corrupted": self.frames_corrupted,
            "frames_duplicated": self.frames_duplicated,
            "edge_errors": self.edge_errors,
            "replies_rejected": self.replies_rejected,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
        }
