"""Tests for the adaptive exit-threshold controller."""

import numpy as np
import pytest

from repro.core import AdaptiveThresholdController, simulate_adaptive_session


def make_controller(**overrides):
    defaults = dict(
        tau_initial=0.2,
        target_latency_ms=50.0,
        tau_min=0.05,
        tau_max=0.9,
        gain=0.05,
        window=10,
    )
    defaults.update(overrides)
    return AdaptiveThresholdController(**defaults)


class TestController:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_controller(tau_initial=1.5)
        with pytest.raises(ValueError):
            make_controller(target_latency_ms=0)
        with pytest.raises(ValueError):
            make_controller(window=0)

    def test_high_latency_raises_threshold(self):
        controller = make_controller()
        before = controller.threshold
        for _ in range(5):
            controller.observe(200.0)  # 4x over target
        assert controller.threshold > before

    def test_low_latency_lowers_threshold(self):
        controller = make_controller(tau_initial=0.5)
        for _ in range(5):
            controller.observe(5.0)
        assert controller.threshold < 0.5

    def test_threshold_respects_bounds(self):
        controller = make_controller(gain=1.0)
        for _ in range(50):
            controller.observe(1000.0)
        assert controller.threshold <= controller.tau_max
        controller2 = make_controller(gain=1.0, tau_initial=0.5)
        for _ in range(50):
            controller2.observe(0.0)
        assert controller2.threshold >= controller2.tau_min

    def test_window_limits_history_influence(self):
        controller = make_controller(window=3)
        for latency in (1000.0, 1000.0, 10.0, 10.0, 10.0):
            controller.observe(latency)
        assert controller.observed_latency_ms == pytest.approx(10.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_controller().observe(-1.0)

    def test_reset(self):
        controller = make_controller()
        controller.observe(500.0)
        controller.reset()
        assert controller.threshold == controller.tau_initial
        assert controller.observed_latency_ms is None


class TestAdaptiveSession:
    def make_stream(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        entropies = rng.uniform(0, 1, n)
        # A link that degrades sharply halfway through the session.
        miss = np.where(np.arange(n) < n // 2, 80.0, 600.0)
        return entropies, miss

    def test_controller_adapts_to_degrading_link(self):
        entropies, miss = self.make_stream()
        adaptive = make_controller(tau_initial=0.3, target_latency_ms=60.0)
        latencies, exits = simulate_adaptive_session(entropies, 5.0, miss, adaptive)

        # Fixed threshold for comparison.
        fixed_exits = entropies < 0.3
        fixed_latencies = np.where(fixed_exits, 5.0, 5.0 + miss)

        # In the degraded second half the controller must exit more and
        # be faster on average than the fixed policy.
        half = len(entropies) // 2
        assert exits[half:].mean() > fixed_exits[half:].mean()
        assert latencies[half:].mean() < fixed_latencies[half:].mean()

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            simulate_adaptive_session(
                np.zeros(5), 1.0, np.zeros(4), make_controller()
            )

    def test_outputs_aligned(self):
        entropies, miss = self.make_stream(50)
        latencies, exits = simulate_adaptive_session(
            entropies, 2.0, miss, make_controller()
        )
        assert len(latencies) == len(exits) == 50
