"""Unit tests for the differentiable NN primitives (conv, pool, BN, losses)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.autograd import Tensor


def numerical_grad(f, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        fp = f()
        x[i] = old - eps
        fm = f()
        x[i] = old
        grad[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestIm2Col:
    def test_shapes(self):
        x = np.random.randn(2, 3, 8, 8).astype(np.float32)
        cols, oh, ow = F.im2col(x, kernel=3, stride=1, padding=0)
        assert (oh, ow) == (6, 6)
        assert cols.shape == (2 * 36, 3 * 9)

    def test_stride_and_padding(self):
        x = np.random.randn(1, 1, 5, 5).astype(np.float32)
        cols, oh, ow = F.im2col(x, kernel=3, stride=2, padding=1)
        assert (oh, ow) == (3, 3)

    def test_content_matches_manual_window(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, _, _ = F.im2col(x, kernel=2, stride=2, padding=0)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_col2im_inverts_non_overlapping(self):
        x = np.random.randn(1, 2, 4, 4).astype(np.float32)
        cols, oh, ow = F.im2col(x, kernel=2, stride=2, padding=0)
        back = F.col2im(cols, x.shape, 2, 2, 0, oh, ow)
        np.testing.assert_allclose(back, x, rtol=1e-6)


class TestConv2d:
    def test_output_shape(self):
        x = Tensor(np.random.randn(2, 3, 8, 8).astype(np.float32))
        w = nn.Parameter(np.random.randn(5, 3, 3, 3).astype(np.float32))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_matches_direct_convolution(self):
        # Hand-rolled correlation on a small case.
        x = np.random.randn(1, 1, 4, 4).astype(np.float64)
        w = np.random.randn(1, 1, 3, 3).astype(np.float64)
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((1, 1, 2, 2))
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_weight_gradient_numerical(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        wt = nn.Parameter(w.copy())
        out = F.conv2d(Tensor(x), wt, padding=1)
        (out * out).sum().backward()

        def forward():
            o = F.conv2d(Tensor(x), Tensor(w)).data if False else None
            out2 = F.conv2d(Tensor(x), Tensor(wt_data), padding=1).data
            return float((out2**2).sum())

        wt_data = wt.data
        num = numerical_grad(forward, wt.data)
        np.testing.assert_allclose(wt.grad, num, atol=1e-3)

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((2, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        out = F.conv2d(xt, Tensor(w), stride=2, padding=1)
        (out * out).sum().backward()

        def forward():
            o = F.conv2d(Tensor(xt.data), Tensor(w), stride=2, padding=1).data
            return float((o**2).sum())

        num = numerical_grad(forward, xt.data)
        np.testing.assert_allclose(xt.grad, num, atol=1e-3)

    def test_bias_gradient(self):
        x = Tensor(np.random.randn(2, 1, 4, 4).astype(np.float32))
        w = nn.Parameter(np.random.randn(3, 1, 3, 3).astype(np.float32))
        b = nn.Parameter(np.zeros(3, dtype=np.float32))
        F.conv2d(x, w, b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 2 * 2))


class TestLinear:
    def test_forward(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        w = nn.Parameter(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        b = nn.Parameter(np.array([0.0, 0.0, 1.0]))
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, [[1.0, 2.0, 4.0]])

    def test_gradients(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        w = nn.Parameter(rng.standard_normal((2, 3)))
        out = F.linear(x, w)
        out.sum().backward()
        assert x.grad.shape == (4, 3)
        assert w.grad.shape == (2, 3)
        np.testing.assert_allclose(w.grad, x.data.sum(axis=0)[None, :].repeat(2, 0))


class TestPooling:
    def test_max_pool_forward(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(out.data, [[[[4]]]])

    def test_max_pool_grad_routes_to_max(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_array_equal(x.grad, [[[[0, 0], [0, 1]]]])

    def test_avg_pool_forward_and_grad(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_array_equal(out.data, np.ones((1, 1, 2, 2)))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        x = Tensor(np.random.randn(2, 3, 4, 4).astype(np.float32))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)

    def test_max_pool_stride_differs_from_kernel(self):
        x = Tensor(np.random.randn(1, 1, 5, 5).astype(np.float32))
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 3, 3)


class TestBatchNorm:
    def test_training_normalizes(self):
        x = Tensor(np.random.randn(64, 4, 3, 3).astype(np.float32) * 5 + 2)
        gamma = nn.Parameter(np.ones(4, dtype=np.float32))
        beta = nn.Parameter(np.zeros(4, dtype=np.float32))
        rm, rv = np.zeros(4, np.float32), np.ones(4, np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert abs(out.data.mean()) < 1e-4
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_running_stats_updated(self):
        x = Tensor(np.random.randn(32, 2, 4, 4).astype(np.float32) + 3.0)
        gamma = nn.Parameter(np.ones(2, np.float32))
        beta = nn.Parameter(np.zeros(2, np.float32))
        rm, rv = np.zeros(2, np.float32), np.ones(2, np.float32)
        F.batch_norm(x, gamma, beta, rm, rv, training=True, momentum=0.5)
        assert (rm > 1.0).all()  # moved toward the batch mean of ~3

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((4, 1, 2, 2), 10.0, dtype=np.float32))
        gamma = nn.Parameter(np.ones(1, np.float32))
        beta = nn.Parameter(np.zeros(1, np.float32))
        rm, rv = np.full(1, 10.0, np.float32), np.ones(1, np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=False)
        np.testing.assert_allclose(out.data, 0.0, atol=1e-3)

    def test_input_gradient_numerical_training(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 2, 3, 3))
        gamma = nn.Parameter(rng.standard_normal(2))
        beta = nn.Parameter(rng.standard_normal(2))

        def forward():
            rm, rv = np.zeros(2), np.ones(2)
            out = F.batch_norm(
                Tensor(xt.data), Tensor(gamma.data), Tensor(beta.data), rm, rv, True
            )
            return float((out.data**2).sum())

        xt = Tensor(x.copy(), requires_grad=True)
        rm, rv = np.zeros(2), np.ones(2)
        out = F.batch_norm(xt, gamma, beta, rm, rv, training=True)
        (out * out).sum().backward()
        num = numerical_grad(forward, xt.data)
        np.testing.assert_allclose(xt.grad, num, atol=1e-3)

    def test_2d_input_supported(self):
        x = Tensor(np.random.randn(16, 5).astype(np.float32))
        gamma = nn.Parameter(np.ones(5, np.float32))
        beta = nn.Parameter(np.zeros(5, np.float32))
        rm, rv = np.zeros(5, np.float32), np.ones(5, np.float32)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert out.shape == (16, 5)


class TestDropout:
    def test_eval_is_identity(self):
        x = Tensor(np.random.randn(10, 10).astype(np.float32))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_training_zeroes_and_rescales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data != 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(out.data[kept], 2.0)

    def test_gradient_masked_like_forward(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100, dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.3, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad[out.data == 0], 0.0)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        probs = F.softmax(np.random.randn(5, 7), axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-6)

    def test_softmax_stability_large_logits(self):
        probs = F.softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        z = np.random.randn(4, 6).astype(np.float32)
        ls = F.log_softmax(Tensor(z)).data
        np.testing.assert_allclose(ls, np.log(F.softmax(z, axis=-1)), atol=1e-5)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((3, 10), dtype=np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1, 2]))
        np.testing.assert_allclose(loss.item(), np.log(10), rtol=1e-5)

    def test_cross_entropy_gradient_numerical(self):
        rng = np.random.default_rng(4)
        z = rng.standard_normal((5, 4))
        y = np.array([0, 1, 2, 3, 0])
        zt = Tensor(z.copy(), requires_grad=True)
        F.cross_entropy(zt, y).backward()
        num = numerical_grad(
            lambda: float(F.cross_entropy(Tensor(zt.data), y).item()), zt.data
        )
        np.testing.assert_allclose(zt.grad, num, atol=1e-5)

    def test_label_smoothing_raises_floor(self):
        logits = Tensor(np.array([[100.0, 0.0]], dtype=np.float32))
        plain = F.cross_entropy(logits, np.array([0])).item()
        smooth = F.cross_entropy(
            Tensor(logits.data), np.array([0]), label_smoothing=0.1
        ).item()
        assert smooth > plain

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
