"""Main-branch model zoo: the four networks of the paper's evaluation."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .alexnet import alexnet
from .base import BranchableNetwork, flattened_size
from .lenet import lenet
from .resnet import BasicBlock, resnet18
from .vgg import vgg16

#: Paper-order registry used by the experiment harness.
MODEL_BUILDERS: dict[str, Callable[..., BranchableNetwork]] = {
    "lenet": lenet,
    "alexnet": alexnet,
    "resnet18": resnet18,
    "vgg16": vgg16,
}

MODEL_NAMES: tuple[str, ...] = ("lenet", "alexnet", "resnet18", "vgg16")


def build_model(
    name: str,
    in_channels: int,
    num_classes: int,
    input_size: int,
    rng: Optional[np.random.Generator] = None,
    **kwargs: object,
) -> BranchableNetwork:
    """Construct a registered network by name.

    Extra keyword arguments (e.g. ``width``) pass through to the builder.
    """
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name](
        in_channels=in_channels,
        num_classes=num_classes,
        input_size=input_size,
        rng=rng,
        **kwargs,
    )


__all__ = [
    "BasicBlock",
    "BranchableNetwork",
    "MODEL_BUILDERS",
    "MODEL_NAMES",
    "alexnet",
    "build_model",
    "flattened_size",
    "lenet",
    "resnet18",
    "vgg16",
]
