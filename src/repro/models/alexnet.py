"""AlexNet main branch, channel-scaled for 28/32-pixel inputs.

The paper's Figure 2 uses AlexNet as the running example: conv1 is the
shared layer, the five-conv/three-FC structure follows, and §V-A notes
the channel counts were adjusted for the small datasets.  The scaling
here keeps the five-conv/three-FC shape so per-layer profiling (FLOPs,
bytes) and partition-point analysis remain structurally faithful.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from .base import BranchableNetwork, flattened_size


def alexnet(
    in_channels: int = 3,
    num_classes: int = 10,
    input_size: int = 32,
    width: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> BranchableNetwork:
    """AlexNet for small inputs; ``width`` scales every channel count.

    The default width keeps the paper's model-size ordering intact
    (AlexNet > VGG16 > ResNet18 > LeNet, Table I) while remaining
    trainable on a laptop-class CPU; AlexNet stays the largest because
    its fully-connected head dominates the parameter count.

    Each conv is followed by batch normalization — a deviation from the
    1989-vintage original that modern small-data reimplementations
    universally adopt; without it the plain conv stack needs a
    GPU-budget's worth of epochs to move at all on a CPU (the binary
    branch, which is BN-normalized by construction, would otherwise
    outrun its own teacher).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    w = width
    stem = nn.Sequential(
        nn.Conv2d(in_channels, w, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
    )
    conv_rest = nn.Sequential(
        nn.Conv2d(w, 2 * w, 3, padding=1, rng=rng),
        nn.BatchNorm2d(2 * w),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(2 * w, 3 * w, 3, padding=1, rng=rng),
        nn.BatchNorm2d(3 * w),
        nn.ReLU(),
        nn.Conv2d(3 * w, 2 * w, 3, padding=1, rng=rng),
        nn.BatchNorm2d(2 * w),
        nn.ReLU(),
        nn.Conv2d(2 * w, 2 * w, 3, padding=1, rng=rng),
        nn.BatchNorm2d(2 * w),
        nn.ReLU(),
        nn.MaxPool2d(2),
    )
    feat = flattened_size(nn.Sequential(stem, conv_rest), in_channels, input_size)
    trunk = nn.Sequential(
        conv_rest,
        nn.Flatten(),
        nn.Dropout(0.25, rng=rng),
        nn.Linear(feat, 8 * w, rng=rng),
        nn.ReLU(),
        nn.Dropout(0.25, rng=rng),
        nn.Linear(8 * w, 4 * w, rng=rng),
        nn.ReLU(),
        nn.Linear(4 * w, num_classes, rng=rng),
    )
    return BranchableNetwork(stem, trunk, in_channels, num_classes, input_size, "alexnet")
