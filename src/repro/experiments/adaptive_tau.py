"""Open- vs closed-loop τ under overload: the adaptive-accuracy curve.

The static deployment picks one τ offline and keeps it while the edge
melts; PR 9's monitor can *see* the melt (burn-rate alerts) but nothing
*acts* on it.  This module drives the
:class:`~repro.runtime.tau_control.TauController` relief valve through a
deterministic overload→drain drill and publishes the trade-off the
controller buys: latency (p99 queue wait) and availability (shed
requests) against accuracy (more branch exits, possibly at a reduced
quality tier).

Two layers:

* :func:`run_tau_drill` — one load level, one fleet, controller on or
  off.  Every session replays the same entropy-pyramid stream (samples
  sorted easiest→hardest→easiest), so miss traffic ramps up to a peak
  and drains back down; with the controller off the peak overruns the
  shard's admission queue and requests are shed, with it on τ rises
  ahead of the cliff and holds (drain lowers it again only on measured
  low waits from live traffic).  The result carries the full
  per-round τ/tier trajectory and per-session predictions — the golden
  determinism fixture replays exactly this.
* :func:`run_adaptive_tau` — the arrival-rate sweep (session counts),
  open vs closed loop at each level, summarized into the
  ``BENCH_adaptive.json`` headline: at the heaviest level the static
  fleet sheds, the controlled fleet does not, and the accuracy cost of
  the extra local exits is bounded.

:func:`adaptive_tau_study` is the offline single-link integral-
controller study the ablation benchmark
(``benchmarks/test_ablation_adaptive_tau.py``) reports — it shares this
module so the ablation and the fleet experiment exercise one τ-sweep
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.adaptive import AdaptiveThresholdController, simulate_adaptive_session
from ..runtime.concurrency import ServiceTimeModel
from ..runtime.fleet import FleetConfig, FleetRouter
from ..runtime.network import four_g
from ..runtime.scheduler import SchedulerConfig, run_concurrent_sessions
from ..runtime.session import LCRSDeployment, SERVED_BY_FALLBACK, SessionConfig
from ..runtime.tau_control import TauControlConfig


def congested_edge_model(
    base_ms: float = 2.0, per_sample_ms: float = 1.5
) -> ServiceTimeModel:
    """A deliberately slow trunk for the overload drill.

    The analytic LeNet trunk serves a frame in microseconds — no
    realistic session count queues against it.  The drill instead
    models a busy edge (think a heavier backbone, or the tail of a
    shared GPU) where per-round miss traffic is comparable to the
    worker's service rate, so queue waits ramp *before* admission
    control starts shedding and the controller has a leading signal.
    """
    return ServiceTimeModel(base_ms=base_ms, per_sample_ms=per_sample_ms)


# ----------------------------------------------------------------------
# The offline τ study (shared with the ablation benchmark)
# ----------------------------------------------------------------------
def adaptive_tau_study(
    seed: int = 2,
    n: int = 600,
    fixed_tau: float = 0.30,
    hit_ms: float = 5.0,
    healthy_miss_ms: float = 90.0,
    healthy_sigma_ms: float = 10.0,
    congested_miss_ms: float = 700.0,
    congested_sigma_ms: float = 60.0,
    target_latency_ms: float = 80.0,
    tau_max: float = 0.95,
    gain: float = 0.08,
) -> dict[str, float]:
    """Fixed vs integral-controlled τ over a degrading single link.

    A three-phase link trace (healthy → congested → recovered) drives
    :func:`~repro.core.adaptive.simulate_adaptive_session`; the fixed
    policy keeps τ at ``fixed_tau`` throughout.  Returns the comparison
    row the ablation benchmark renders and asserts on.
    """
    rng = np.random.default_rng(seed)
    entropies = rng.uniform(0, 1, n)
    miss_ms = np.concatenate(
        [
            rng.normal(healthy_miss_ms, healthy_sigma_ms, n // 3),
            rng.normal(congested_miss_ms, congested_sigma_ms, n // 3),
            rng.normal(healthy_miss_ms, healthy_sigma_ms, n - 2 * (n // 3)),
        ]
    ).clip(min=10)

    fixed_exits = entropies < fixed_tau
    fixed_latency = np.where(fixed_exits, hit_ms, hit_ms + miss_ms)

    controller = AdaptiveThresholdController(
        tau_initial=fixed_tau,
        target_latency_ms=target_latency_ms,
        tau_max=tau_max,
        gain=gain,
    )
    adaptive_latency, adaptive_exits = simulate_adaptive_session(
        entropies, hit_ms, miss_ms, controller
    )
    return {
        "fixed_mean": float(fixed_latency.mean()),
        "adaptive_mean": float(adaptive_latency.mean()),
        "fixed_exit": float(fixed_exits.mean()),
        "adaptive_exit": float(adaptive_exits.mean()),
        "congested_fixed": float(fixed_latency[n // 3 : 2 * n // 3].mean()),
        "congested_adaptive": float(adaptive_latency[n // 3 : 2 * n // 3].mean()),
        "recovered_tau": controller.threshold,
    }


# ----------------------------------------------------------------------
# The fleet drill
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OverloadStream:
    """A deterministic overload→drain image stream plus its static τ.

    ``static_tau`` sits in the entropy gap between the easy and hard
    pools, so at the static gate every easy sample exits in the browser
    and every hard sample misses to the edge; ``miss_plan[r]`` is the
    number of hard samples in round ``r``'s chunk — the per-session miss
    volume the stream was built to produce at that τ.
    """

    images: np.ndarray
    labels: Optional[np.ndarray]
    static_tau: float
    batch_size: int
    miss_plan: tuple[int, ...]


def build_overload_stream(
    system,
    images: np.ndarray,
    labels=None,
    *,
    batch_size: int = 4,
    rounds: int = 12,
    num_bases: int = 1,
) -> OverloadStream:
    """Assemble the entropy-pyramid drill stream from a sample pool.

    Branch entropies (through the same serialized engines the drill's
    deployments run — ``num_bases`` must match) sort the pool; the
    easiest samples form the *easy* pool and the hardest the *hard*
    pool, and round ``r``'s chunk mixes them with a triangle-shaped
    hard fraction — 0 at the edges of the run, 1 at the middle.  At the
    returned ``static_tau`` (the midpoint of the entropy gap between
    the pools) per-round miss traffic therefore ramps smoothly up to
    ``batch_size`` misses per session at the peak and drains back,
    which is exactly the leading-signal shape the closed loop needs and
    the cliff the open loop sheds on.
    """
    from ..runtime.session import build_lcrs_assets, BrowserClient

    images = np.asarray(images, dtype=np.float32)
    if rounds < 3:
        raise ValueError("rounds must be at least 3 (ramp, peak, drain)")
    needed = batch_size * rounds
    if needed > len(images):
        raise ValueError(
            f"need at least {needed} samples for {rounds} rounds of "
            f"{batch_size}, got {len(images)}"
        )
    assets = build_lcrs_assets(system.model, num_bases=num_bases)
    browser = BrowserClient(
        assets.stem_payload, assets.branch_payload, system.threshold
    )
    _, _, entropies, _ = browser.process_batch(images)
    order = np.argsort(entropies, kind="stable")

    # Triangle miss plan: 0 at both ends, batch_size at the peak.
    span = (rounds - 1) / 2.0
    plan = tuple(
        int(round(batch_size * (1.0 - abs(r - span) / span))) for r in range(rounds)
    )
    hard_needed = sum(plan)
    easy_needed = needed - hard_needed
    easy_pool = list(order[:easy_needed])
    hard_pool = list(order[len(order) - hard_needed :])
    gap_lo = float(entropies[easy_pool[-1]]) if easy_pool else 0.0
    gap_hi = float(entropies[hard_pool[0]])
    static_tau = (gap_lo + gap_hi) / 2.0

    chunks: list[int] = []
    e = h = 0
    for n_hard in plan:
        chunks.extend(easy_pool[e : e + batch_size - n_hard])
        e += batch_size - n_hard
        chunks.extend(hard_pool[h : h + n_hard])
        h += n_hard
    idx = np.array(chunks, dtype=int)
    return OverloadStream(
        images=images[idx],
        labels=None if labels is None else np.asarray(labels)[idx],
        static_tau=static_tau,
        batch_size=batch_size,
        miss_plan=plan,
    )


@dataclass
class TauDrillResult:
    """One load level's outcome, controller on or off.

    ``tau_trajectory`` / ``tier_trajectory`` have one row per fleet
    round: the controller's per-active-shard τ (and branch quality
    tier) *after* that round's control update — with the controller off
    the static τ is replayed so on/off trajectories align row-for-row.
    ``predictions`` carries each session's served class ids for
    bit-identity comparisons and golden digests.
    """

    controller: bool
    sessions: int
    samples: int
    static_tau: float
    shed_samples: int
    shed_rate: float
    exit_rate: float
    fallback_rate: float
    accuracy: Optional[float]
    mean_latency_ms: float
    p99_queue_wait_ms: float
    rounds: int
    tau_trajectory: list[list[float]]
    tier_trajectory: list[list[int]]
    adjustments: list[dict]
    predictions: list[list[int]]
    served_by: dict[str, int]
    health: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "controller": self.controller,
            "sessions": self.sessions,
            "samples": self.samples,
            "static_tau": self.static_tau,
            "shed_samples": self.shed_samples,
            "shed_rate": self.shed_rate,
            "exit_rate": self.exit_rate,
            "fallback_rate": self.fallback_rate,
            "accuracy": self.accuracy,
            "mean_latency_ms": self.mean_latency_ms,
            "p99_queue_wait_ms": self.p99_queue_wait_ms,
            "rounds": self.rounds,
            "tau_trajectory": [list(r) for r in self.tau_trajectory],
            "tier_trajectory": [list(r) for r in self.tier_trajectory],
            "adjustments": [dict(a) for a in self.adjustments],
            "served_by": dict(self.served_by),
        }


def default_drill_control(static_tau: float) -> TauControlConfig:
    """The drill's controller policy, anchored at the static τ.

    Asymmetric on purpose: escalation is single-round and coarse
    (``step_up``) because the drill's ramp gives only a few rounds of
    warning before the static configuration would overrun the admission
    queue, while drain is fine-grained (``step_down``) behind a
    cooldown — a τ that relieved the queue must creep back down, not
    snap back and re-expose the misses it just shed upstream of.
    """
    return TauControlConfig(
        tau_min=static_tau,
        tau_max=0.95,
        tau_initial=static_tau,
        step_up=0.25,
        step_down=0.05,
        target_wait_ms=2.0,
        low_wait_ms=0.5,
        hold_rounds=1,
        cooldown_rounds=1,
        window_ms=40.0,
    )


def run_tau_drill(
    system,
    stream: OverloadStream,
    *,
    controller: bool,
    sessions: int = 8,
    num_bases: int = 1,
    num_shards: int = 1,
    queue_capacity: int = 24,
    num_workers: int = 1,
    service_model: Optional[ServiceTimeModel] = None,
    control: Optional[TauControlConfig] = None,
    seed: int = 0,
) -> TauDrillResult:
    """Replay the overload→drain drill at one load level.

    Every session replays the same :class:`OverloadStream`, so all
    sessions ramp their miss traffic together and the shard's admission
    queue (``queue_capacity`` samples) is the bottleneck under test:
    per-round miss volume is ``sessions × miss_plan[r]`` at the static
    τ, and the drill is overloaded when the peak exceeds the queue.
    With ``controller=False`` the fleet is a plain static-τ fleet — no
    controller is constructed and serving is bit-identical to
    pre-controller code.  With ``controller=True`` the fleet runs
    :func:`default_drill_control` (or ``control``) anchored at the
    stream's static τ and, when ``num_bases`` > 1, may also step the
    branch quality tier.
    """
    images = np.asarray(stream.images, dtype=np.float32)
    labels = stream.labels
    static_tau = stream.static_tau
    batch_size = stream.batch_size
    fleet = FleetRouter.for_system(
        system,
        config=FleetConfig(
            num_shards=num_shards,
            placement="least-loaded",
            scheduler=SchedulerConfig(
                window_ms=0.0,
                num_workers=num_workers,
                queue_capacity=queue_capacity,
                # Any single chunk always fits its tenant share; sheds
                # happen only when a round's *total* miss traffic
                # overruns the shard queue — the congestion cliff the
                # controller is supposed to stay ahead of.
                max_per_tenant=batch_size,
            ),
            failure_threshold=10_000,
            seed=seed,
        ),
        service_model=(
            service_model if service_model is not None else congested_edge_model()
        ),
    )
    cfg = control if control is not None else default_drill_control(static_tau)
    if controller:
        fleet.enable_tau_control(cfg, max_quality_tier=num_bases)

    tau_trajectory: list[list[float]] = []
    tier_trajectory: list[list[int]] = []

    def record_round(router: FleetRouter, _round: int) -> None:
        ctrl = router.tau_controller
        active = router.active_shard_ids
        if ctrl is None:
            tau_trajectory.append([static_tau for _ in active])
            tier_trajectory.append([num_bases for _ in active])
        else:
            tau_trajectory.append([ctrl.threshold(sid) for sid in active])
            tier_trajectory.append([ctrl.quality_tier(sid) for sid in active])

    fleet.after_flush_hooks.append(record_round)
    deployments = [
        LCRSDeployment(system, four_g(seed=seed * 100 + i), num_bases=num_bases)
        for i in range(sessions)
    ]
    results = run_concurrent_sessions(
        deployments,
        [images] * sessions,
        fleet,
        config=SessionConfig(batch_size=batch_size, threshold=static_tau),
    )

    health = fleet.health().as_dict()
    shed = sum(int(s.get("shed_samples", 0)) for s in health["shards"])
    admitted = sum(int(s.get("samples_served", 0)) for s in health["shards"])
    total = sessions * len(images)
    served_by: dict[str, int] = {}
    predictions: list[list[int]] = []
    correct = 0
    for r in results:
        predictions.append([int(o.prediction) for o in r.outcomes])
        for o in r.outcomes:
            served_by[o.served_by] = served_by.get(o.served_by, 0) + 1
        if labels is not None:
            correct += int((r.predictions == np.asarray(labels)).sum())
    ctrl = fleet.tau_controller
    return TauDrillResult(
        controller=controller,
        sessions=sessions,
        samples=total,
        static_tau=static_tau,
        shed_samples=shed,
        # Fraction of edge admission attempts refused (retries count as
        # fresh attempts, so this is the 503 rate a client population
        # actually experiences — not a fraction of the sample stream).
        shed_rate=shed / (shed + admitted) if (shed + admitted) else 0.0,
        exit_rate=float(np.mean([r.exit_rate for r in results])),
        fallback_rate=float(
            sum(
                n for who, n in served_by.items() if who == SERVED_BY_FALLBACK
            )
            / total
        )
        if total
        else 0.0,
        accuracy=(correct / total) if labels is not None and total else None,
        mean_latency_ms=float(np.mean([r.mean_latency_ms for r in results])),
        p99_queue_wait_ms=float(
            max(float(s.get("p99_queue_wait_ms", 0.0)) for s in health["shards"])
        ),
        rounds=int(health["rounds"]),
        tau_trajectory=tau_trajectory,
        tier_trajectory=tier_trajectory,
        adjustments=[dict(a) for a in ctrl.actions] if ctrl is not None else [],
        predictions=predictions,
        served_by=served_by,
        health=health,
    )


# ----------------------------------------------------------------------
# The arrival-rate sweep (the BENCH_adaptive.json curve)
# ----------------------------------------------------------------------
@dataclass
class AdaptiveTauResult:
    """Open- vs closed-loop sweep over arrival rates (session counts).

    ``points`` holds one :class:`TauDrillResult` per (level, mode);
    ``headline`` compares the heaviest level: the static fleet's shed
    rate, the controlled fleet's (the acceptance bar is zero), both
    p99 queue waits, and the accuracy the controller spent buying the
    difference.
    """

    network: str
    session_levels: tuple[int, ...]
    samples_per_session: int
    static_tau: float
    num_bases: int
    points: list[TauDrillResult] = field(default_factory=list)

    def point(self, sessions: int, controller: bool) -> TauDrillResult:
        for p in self.points:
            if p.sessions == sessions and p.controller == controller:
                return p
        raise KeyError(f"no point for sessions={sessions}, controller={controller}")

    @property
    def headline(self) -> dict[str, float]:
        peak = max(self.session_levels)
        static = self.point(peak, False)
        closed = self.point(peak, True)
        out = {
            "peak_sessions": float(peak),
            "static_shed_rate": static.shed_rate,
            "closed_shed_rate": closed.shed_rate,
            "static_p99_wait_ms": static.p99_queue_wait_ms,
            "closed_p99_wait_ms": closed.p99_queue_wait_ms,
            "static_exit_rate": static.exit_rate,
            "closed_exit_rate": closed.exit_rate,
            "tau_adjustments": float(len(closed.adjustments)),
        }
        if static.accuracy is not None and closed.accuracy is not None:
            out["static_accuracy"] = static.accuracy
            out["closed_accuracy"] = closed.accuracy
            out["accuracy_drop"] = static.accuracy - closed.accuracy
        return out

    def as_dict(self) -> dict[str, object]:
        return {
            "network": self.network,
            "session_levels": list(self.session_levels),
            "samples_per_session": self.samples_per_session,
            "static_tau": self.static_tau,
            "num_bases": self.num_bases,
            "points": [p.as_dict() for p in self.points],
            "headline": self.headline,
        }


def run_adaptive_tau(
    system,
    images: np.ndarray,
    labels=None,
    session_levels: Sequence[int] = (2, 4, 8),
    rounds: int = 12,
    batch_size: int = 4,
    num_bases: int = 1,
    queue_capacity: int = 24,
    num_workers: int = 1,
    service_model: Optional[ServiceTimeModel] = None,
    control: Optional[TauControlConfig] = None,
    seed: int = 0,
) -> AdaptiveTauResult:
    """Sweep arrival rates open- and closed-loop; publish the curve.

    One :func:`build_overload_stream` is cut from ``images`` and every
    level drives ``sessions`` concurrent replicas of it at the stream's
    static τ, once with the fleet controller off and once on.  The
    open-loop fleet's miss peak scales with the session count until it
    overruns the admission queue and sheds; the closed loop trades exit
    rate (and, with ``num_bases`` > 1, branch quality) to stay under
    it.
    """
    stream = build_overload_stream(
        system, images, labels, batch_size=batch_size, rounds=rounds,
        num_bases=num_bases,
    )
    result = AdaptiveTauResult(
        network=system.model.base_name,
        session_levels=tuple(int(n) for n in session_levels),
        samples_per_session=len(stream.images),
        static_tau=stream.static_tau,
        num_bases=num_bases,
    )
    for level in result.session_levels:
        for use_controller in (False, True):
            result.points.append(
                run_tau_drill(
                    system,
                    stream,
                    controller=use_controller,
                    sessions=level,
                    num_bases=num_bases,
                    queue_capacity=queue_capacity,
                    num_workers=num_workers,
                    service_model=service_model,
                    control=control,
                    seed=seed,
                )
            )
    return result
