"""The LCRS composite network: shared conv1, main branch, binary branch.

Figure 2 of the paper: the full-precision *main branch* and the tiny
*binary branch* share the first convolutional layer.  At deployment the
browser holds conv1 + the binary branch; the edge server holds the rest
of the main branch.  Sharing conv1 means a binary-branch miss only ships
the conv1 feature map — never the raw task — to the edge (§IV-A).

The binary-branch *structure* follows §IV-D.3: a configurable stack of
binary conv layers and binary FC layers, always terminated by one
full-precision FC classifier ("the last layer of all structures is a
full connection layer with float weights").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..models.base import BranchableNetwork
from ..nn.autograd import Tensor


@dataclass(frozen=True)
class BinaryBranchConfig:
    """Structure of the binary branch (the Figure 4 design space).

    ``num_conv_layers`` / ``num_fc_layers`` are the counts of *binary*
    layers; the float classifier FC is always appended.  ``channels``
    is the output width of each binary conv; ``hidden`` the width of
    each binary FC.
    """

    num_conv_layers: int = 1
    num_fc_layers: int = 1
    channels: int = 32
    hidden: int = 64
    binarize_input: bool = True
    pool_after_conv: bool = True

    def __post_init__(self) -> None:
        if self.num_conv_layers < 0 or self.num_fc_layers < 0:
            raise ValueError("layer counts must be non-negative")
        if self.num_conv_layers == 0 and self.num_fc_layers == 0:
            raise ValueError("binary branch needs at least one binary layer")


def build_binary_branch(
    input_shape: tuple[int, int, int],
    num_classes: int,
    config: BinaryBranchConfig = BinaryBranchConfig(),
    rng: Optional[np.random.Generator] = None,
) -> nn.Sequential:
    """Construct a binary branch for a given stem output shape.

    The branch maps the shared conv1 feature map to class logits using
    ``config.num_conv_layers`` binary convolutions (each optionally
    followed by 2×2 max-pooling while the spatial extent allows it),
    then ``config.num_fc_layers`` binary FC layers, then the float
    classifier.

    Every binarized layer is preceded by batch normalization, following
    the XNOR-Net block order (BN → binarize → conv).  This is essential,
    not cosmetic: the shared stem ends in ReLU, so its raw output is
    non-negative and ``sign(·)`` of it would be constant +1 — BN
    re-centers the activations so the binarized input actually carries
    information.

    Normalization is kept *per channel* (2-D) up to the flatten, never
    over the flattened feature vector: a ``BatchNorm1d`` over thousands
    of flattened features would ship four fp32 arrays of that size to
    the browser and silently dominate the bundle, defeating the
    compression the binary branch exists for.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    c, h, w = input_shape
    layers: list[nn.Module] = []

    # Center the (post-ReLU, non-negative) stem output before the first
    # binarization.
    layers.append(nn.BatchNorm2d(c))

    cin = c
    for _ in range(config.num_conv_layers):
        layers.append(
            nn.BinaryConv2d(
                cin,
                config.channels,
                3,
                padding=1,
                binarize_input=config.binarize_input,
                rng=rng,
            )
        )
        cin = config.channels
        if config.pool_after_conv and min(h, w) >= 4:
            layers.append(nn.MaxPool2d(2))
            h, w = h // 2, w // 2
        layers.append(nn.BatchNorm2d(cin))

    layers.append(nn.Flatten())
    features = cin * h * w

    fin = features
    for _ in range(config.num_fc_layers):
        layers.append(
            nn.BinaryLinear(
                fin, config.hidden, binarize_input=config.binarize_input, rng=rng
            )
        )
        fin = config.hidden
        layers.append(nn.BatchNorm1d(fin))

    # Float classifier head (always full precision, per §IV-D.3).
    layers.append(nn.Linear(fin, num_classes, rng=rng))
    return nn.Sequential(*layers)


def build_quantized_branch(
    input_shape: tuple[int, int, int],
    num_classes: int,
    bits: int,
    config: BinaryBranchConfig = BinaryBranchConfig(),
    rng: Optional[np.random.Generator] = None,
) -> nn.Sequential:
    """A k-bit variant of the binary branch (the precision-spectrum study).

    Same topology as :func:`build_binary_branch` with the binary layers
    replaced by :class:`~repro.nn.quantized.QuantizedConv2d` /
    ``QuantizedLinear``; ``bits = 1`` is the BWN point of the spectrum
    (weight-only binarization), ``bits = 32`` effectively full precision.
    Activations stay fp32 throughout — the study isolates the *weight*
    precision axis the paper's §II-B discussion is about.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    c, h, w = input_shape
    layers: list[nn.Module] = [nn.BatchNorm2d(c)]

    cin = c
    for _ in range(config.num_conv_layers):
        layers.append(
            nn.QuantizedConv2d(cin, config.channels, 3, bits=bits, padding=1, rng=rng)
        )
        cin = config.channels
        if config.pool_after_conv and min(h, w) >= 4:
            layers.append(nn.MaxPool2d(2))
            h, w = h // 2, w // 2
        layers.append(nn.BatchNorm2d(cin))

    layers.append(nn.Flatten())
    fin = cin * h * w
    for _ in range(config.num_fc_layers):
        layers.append(nn.QuantizedLinear(fin, config.hidden, bits=bits, rng=rng))
        fin = config.hidden
        layers.append(nn.BatchNorm1d(fin))

    layers.append(nn.Linear(fin, num_classes, rng=rng))
    return nn.Sequential(*layers)


class CompositeNetwork(nn.Module):
    """Main branch + binary branch sharing the first conv layer.

    Built from any :class:`~repro.models.base.BranchableNetwork`:
    ``stem`` and ``main_trunk`` come from the donor network, and a fresh
    binary branch is attached to the stem output.
    """

    def __init__(
        self,
        network: BranchableNetwork,
        branch_config: BinaryBranchConfig = BinaryBranchConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.stem = network.stem
        self.main_trunk = network.trunk
        self.branch_config = branch_config
        self.num_classes = network.num_classes
        self.in_channels = network.in_channels
        self.input_size = network.input_size
        self.base_name = network.name
        stem_shape = network.stem_output_shape()
        self.stem_output_shape = stem_shape
        self.binary_branch = build_binary_branch(
            stem_shape, network.num_classes, branch_config, rng=rng
        )

    # ------------------------------------------------------------------
    # Forward views
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Joint forward: returns (main_logits, binary_logits)."""
        features = self.stem(x)
        return self.main_trunk(features), self.binary_branch(features)

    def forward_main(self, x: Tensor) -> Tensor:
        return self.main_trunk(self.stem(x))

    def forward_binary(self, x: Tensor) -> Tensor:
        return self.binary_branch(self.stem(x))

    def forward_features(self, x: Tensor) -> Tensor:
        """Shared conv1 output — the tensor that crosses to the edge."""
        return self.stem(x)

    # ------------------------------------------------------------------
    # Parameter groups (Algorithm 1 trains the branches with separate
    # learning rates η_main and η_binary)
    # ------------------------------------------------------------------
    def main_parameters(self) -> list[nn.Parameter]:
        """Stem + main trunk parameters (updated by the main-branch pass)."""
        return list(self.stem.parameters()) + list(self.main_trunk.parameters())

    def binary_parameters(self) -> list[nn.Parameter]:
        """Binary-branch parameters (updated by the binary-branch pass)."""
        return list(self.binary_branch.parameters())

    # ------------------------------------------------------------------
    # Deployment views
    # ------------------------------------------------------------------
    def browser_modules(self) -> nn.Sequential:
        """What ships to the mobile web browser: conv1 + binary branch."""
        return nn.Sequential(self.stem, self.binary_branch)

    def edge_modules(self) -> nn.Sequential:
        """What stays on the edge server: the main trunk."""
        return self.main_trunk

    def __repr__(self) -> str:
        return (
            f"CompositeNetwork(base={self.base_name!r}, "
            f"branch={self.branch_config}, classes={self.num_classes})"
        )
