"""Device-sensitivity ablation — robustness of the Table II conclusion.

DESIGN.md §5: the device throughputs are simulated constants calibrated
to published browser/server measurements.  This sweep re-prices the
comparison across a 16x range of browser speeds (and both link presets)
to show LCRS's win is not knife-edge on the calibration.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    DEFAULT_EXIT_RATES,
    build_network_assets,
    build_plans,
    run_device_sensitivity,
)
from repro.models import MODEL_NAMES
from repro.runtime import EDGE_SERVER, MOBILE_BROWSER_WASM, simulate_plan, three_g, wifi


def test_device_sensitivity(benchmark, announce):
    results = benchmark.pedantic(
        lambda: {
            net: run_device_sensitivity(net, num_samples=30) for net in MODEL_NAMES
        },
        rounds=1,
        iterations=1,
    )
    blocks = []
    for net, result in results.items():
        blocks.append(result.render())
        blocks.extend(result.shape_checks())
    announce(*blocks)

    for net, result in results.items():
        assert all(s > 1.0 for s in result.speedups), net


def test_link_sensitivity(benchmark, announce):
    """LCRS keeps winning on both a worse (3G) and a better (WiFi) link."""

    def sweep():
        rows = {}
        for link_name, link_factory in (("3g", three_g), ("wifi", wifi)):
            for net in ("lenet", "vgg16"):
                assets = build_network_assets(net)
                link = link_factory(seed=0, jitter_sigma=0.0)
                plans = build_plans(assets, link)
                exit_rate = DEFAULT_EXIT_RATES[net]
                miss = [i % 100 >= exit_rate * 100 for i in range(30)]
                latencies = {}
                for name, plan in plans.items():
                    trace = simulate_plan(
                        plan, 30, link, MOBILE_BROWSER_WASM, EDGE_SERVER,
                        cold_start=True,
                        miss_mask=miss if name == "lcrs" else None,
                    )
                    latencies[name] = trace.mean_latency_ms
                rows[(link_name, net)] = latencies
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = []
    for (link_name, net), latencies in rows.items():
        ordered = ", ".join(f"{k}={v:.0f}ms" for k, v in latencies.items())
        lines.append(f"  {link_name}/{net}: {ordered}")
        lcrs = latencies.pop("lcrs")
        assert lcrs < min(latencies.values()), (link_name, net)
    announce("link sensitivity —", *lines)
