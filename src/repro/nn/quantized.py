"""k-bit uniformly-quantized layers (the spectrum between fp32 and XNOR).

The paper jumps straight from full precision to 1-bit XNOR.  A natural
question its evaluation leaves open is where intermediate precisions
land: a k-bit branch is 32/k× smaller than fp32 — does it buy back the
accuracy the binary branch loses?  These layers answer that with the
same training recipe as the binary ones (quantize in the forward pass,
straight-through gradients, full-precision master weights).

Quantization is symmetric uniform per output unit:

    W̃ = s · round(clip(W / s, −(2^{k−1}−1), 2^{k−1}−1)),
    s  = max|W| / (2^{k−1}−1)

so ``k = 1`` degenerates to sign·scale (BWN) and large ``k`` approaches
identity.  Deployment bytes are ``k`` bits per weight plus one fp32
scale per output unit (see :func:`quantized_param_bytes`, which
:mod:`repro.profiling` consults).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .autograd import Tensor
from .module import Module, Parameter


def quantize_weights(weights: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Quantize to k-bit symmetric integers; returns (int_codes, scales).

    Scales are per output unit (first axis), matching the binary layers'
    per-filter α.
    """
    if bits < 1 or bits > 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    axes = tuple(range(1, weights.ndim))
    qmax = max(2 ** (bits - 1) - 1, 1)
    scale = np.abs(weights).max(axis=axes, keepdims=True) / qmax
    scale = np.where(scale > 0, scale, 1.0)
    codes = np.clip(np.round(weights / scale), -qmax, qmax)
    return codes.astype(np.int32), scale.astype(np.float32)


def dequantize(codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
    return (codes * scale).astype(np.float32)


def quantized_param_bytes(weight_shape: tuple[int, ...], bits: int, has_bias: bool) -> int:
    """Deployment bytes of a k-bit layer (packed codes + fp32 scales)."""
    out_units = weight_shape[0]
    weights = int(np.prod(weight_shape))
    packed = (weights * bits + 7) // 8
    scales = out_units * 4
    bias = out_units * 4 if has_bias else 0
    return packed + scales + bias


class _QuantizedMixin:
    """Shared forward-time weight fake-quantization with STE."""

    def _effective_weight(self) -> Tensor:
        codes, scale = quantize_weights(self.weight.data, self.bits)
        quantized = dequantize(codes, scale)
        # Straight-through: forward uses W̃, backward flows as identity
        # into the master weights wherever they are inside the clip range.
        delta = Tensor(quantized - self.weight.data)
        return self.weight + delta


class QuantizedConv2d(Module, _QuantizedMixin):
    """Conv2d with k-bit weights (activations stay fp32)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        bits: int = 4,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if bits < 1 or bits > 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.bits = bits
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng), name="weight")
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self._effective_weight(), self.bias, self.stride, self.padding
        )

    def deployment_bytes(self) -> int:
        return quantized_param_bytes(
            self.weight.data.shape, self.bits, self.bias is not None
        )

    def __repr__(self) -> str:
        return (
            f"QuantizedConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, bits={self.bits})"
        )


class QuantizedLinear(Module, _QuantizedMixin):
    """Linear with k-bit weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bits: int = 4,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        if bits < 1 or bits > 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.in_features = in_features
        self.out_features = out_features
        self.bits = bits
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self._effective_weight(), self.bias)

    def deployment_bytes(self) -> int:
        return quantized_param_bytes(
            self.weight.data.shape, self.bits, self.bias is not None
        )

    def __repr__(self) -> str:
        return f"QuantizedLinear({self.in_features}, {self.out_features}, bits={self.bits})"
