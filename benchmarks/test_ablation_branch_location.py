"""§IV-D.2 ablation — location of the binary branch.

Sweep the attach point over the main branch's conv layers; under the
web's cold-start regime the earliest point (after conv1) minimizes
expected latency, exactly the paper's E_{e_h} − E_{e_1} > 0 argument.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_branch_location
from repro.models import MODEL_NAMES


def test_branch_location_ablation(benchmark, announce):
    results = benchmark.pedantic(
        lambda: {net: run_branch_location(net) for net in MODEL_NAMES},
        rounds=1,
        iterations=1,
    )
    blocks = []
    for net, result in results.items():
        blocks.append(result.render())
        blocks.extend(result.shape_checks())
    announce(*blocks)

    strictly_optimal = 0
    for net, result in results.items():
        best_ms = min(result.expected_ms)
        earliest_ms = result.expected_ms[0]
        # The earliest attach point must be optimal or within 15 % of it.
        # (On the channel-scaled VGG16 the early conv prefix is so light
        # that a slightly deeper attach edges it out — a documented
        # divergence; see EXPERIMENTS.md.)
        assert earliest_ms <= best_ms * 1.15, net
        if earliest_ms == best_ms:
            strictly_optimal += 1
        # Exit rates rise with depth (the accuracy lift) yet never pay off
        # by more than that margin.
        assert result.exit_rates == sorted(result.exit_rates), net
    assert strictly_optimal >= len(results) - 1

    # The warm regime shows the trade-off genuinely flips on load cost:
    # deeper attachment gets *relatively* cheaper once loads amortize.
    cold = run_branch_location("alexnet", cold_start=True)
    warm = run_branch_location("alexnet", cold_start=False)
    cold_penalty = cold.expected_ms[-1] / cold.expected_ms[0]
    warm_penalty = warm.expected_ms[-1] / warm.expected_ms[0]
    assert warm_penalty < cold_penalty


def test_benchmark_location_sweep(benchmark):
    benchmark(lambda: run_branch_location("resnet18"))
