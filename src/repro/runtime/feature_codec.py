"""Feature-map codecs for the browser→edge miss path.

When the binary branch is not confident, LCRS ships the conv1 feature
map to the edge (§IV-A).  The paper sends it as-is; this module adds the
obvious systems optimization — quantizing the tensor on the wire — and
quantifies its accuracy cost, since the edge trunk was trained on fp32
features.  Three codecs:

* ``fp32``  — identity (the paper's behaviour, 4 B/element);
* ``fp16``  — IEEE half precision (2 B/element, lossless in practice for
  post-ReLU activations);
* ``int8``  — per-tensor affine quantization (1 B/element + 8 B header).

Each codec round-trips a batch of feature maps to bytes and back; the
deployment and the ablation harness measure both the byte savings and
the end-accuracy impact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

import numpy as np


class CodecError(ValueError):
    """Raised on malformed encoded payloads (or unencodable inputs)."""


class UnknownCodecError(CodecError, KeyError):
    """Raised when a codec name does not resolve.

    Doubly derived so protocol-level handlers can catch the structured
    :class:`CodecError` while existing ``KeyError`` callers keep working.
    """

    def __str__(self) -> str:  # KeyError repr()s its argument; keep the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class FeatureCodec:
    """A reversible tensor-on-the-wire encoding."""

    name: str
    encode: Callable[[np.ndarray], bytes]
    decode: Callable[[bytes, tuple[int, ...]], np.ndarray]
    bytes_per_element: float
    header_bytes: int = 0

    def wire_bytes(self, shape: tuple[int, ...]) -> int:
        """Predicted payload size for a feature tensor of ``shape``."""
        return int(np.prod(shape) * self.bytes_per_element) + self.header_bytes


def _encode_fp32(features: np.ndarray) -> bytes:
    return np.ascontiguousarray(features, dtype=np.float32).tobytes()


def _decode_fp32(payload: bytes, shape: tuple[int, ...]) -> np.ndarray:
    expected = int(np.prod(shape)) * 4
    if len(payload) != expected:
        raise CodecError(f"fp32 payload is {len(payload)}B, expected {expected}B")
    return np.frombuffer(payload, dtype=np.float32).reshape(shape).copy()


def _encode_fp16(features: np.ndarray) -> bytes:
    return np.ascontiguousarray(features, dtype=np.float16).tobytes()


def _decode_fp16(payload: bytes, shape: tuple[int, ...]) -> np.ndarray:
    expected = int(np.prod(shape)) * 2
    if len(payload) != expected:
        raise CodecError(f"fp16 payload is {len(payload)}B, expected {expected}B")
    half = np.frombuffer(payload, dtype=np.float16).reshape(shape)
    return half.astype(np.float32)


def _encode_int8(features: np.ndarray) -> bytes:
    features = np.ascontiguousarray(features, dtype=np.float32)
    if features.size == 0:
        # Nothing to quantize; a neutral header keeps decode total.
        return struct.pack("<ff", 0.0, 1.0)
    if not np.isfinite(features).all():
        # An affine uint8 grid cannot represent ±inf/NaN; refusing beats
        # shipping a NaN scale that dequantizes to garbage.
        raise CodecError("int8 codec requires finite features")
    lo = float(features.min())
    hi = float(features.max())
    # Quantization in float64: a denormal (hi - lo) / 255 range would
    # flush to zero in float32 and divide by zero.
    scale = (hi - lo) / 255.0 if hi > lo else 1.0
    q = np.clip(
        np.round((features.astype(np.float64) - lo) / scale), 0.0, 255.0
    ).astype(np.uint8)
    return struct.pack("<ff", np.float32(lo), np.float32(scale)) + q.tobytes()


def _decode_int8(payload: bytes, shape: tuple[int, ...]) -> np.ndarray:
    expected = int(np.prod(shape)) + 8
    if len(payload) != expected:
        raise CodecError(f"int8 payload is {len(payload)}B, expected {expected}B")
    lo, scale = struct.unpack("<ff", payload[:8])
    if not (np.isfinite(lo) and np.isfinite(scale)) or scale <= 0:
        # Encode never emits these; a non-finite or non-positive header
        # is corruption, not a quantization grid.
        raise CodecError(f"bad int8 header: lo={lo!r}, scale={scale!r}")
    q = np.frombuffer(payload[8:], dtype=np.uint8).reshape(shape)
    return (q.astype(np.float64) * scale + lo).astype(np.float32)


FP32_CODEC = FeatureCodec("fp32", _encode_fp32, _decode_fp32, bytes_per_element=4.0)
FP16_CODEC = FeatureCodec("fp16", _encode_fp16, _decode_fp16, bytes_per_element=2.0)
INT8_CODEC = FeatureCodec(
    "int8", _encode_int8, _decode_int8, bytes_per_element=1.0, header_bytes=8
)

FEATURE_CODECS: dict[str, FeatureCodec] = {
    codec.name: codec for codec in (FP32_CODEC, FP16_CODEC, INT8_CODEC)
}


def get_codec(name: str) -> FeatureCodec:
    if name not in FEATURE_CODECS:
        raise UnknownCodecError(
            f"unknown codec {name!r}; available: {sorted(FEATURE_CODECS)}"
        )
    return FEATURE_CODECS[name]


def roundtrip_error(codec: FeatureCodec, features: np.ndarray) -> float:
    """Max absolute reconstruction error of one encode/decode cycle."""
    decoded = codec.decode(codec.encode(features), features.shape)
    return float(np.abs(decoded - features.astype(np.float32)).max())
