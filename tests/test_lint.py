"""Repo lint gates (source-text checks, no runtime behaviour).

The one rule so far: wall-clock reads go through
:mod:`repro.observability.clock`.  Direct ``time.time()`` /
``time.perf_counter()`` / ``time.monotonic()`` calls outside
``observability/`` would reintroduce the simulated-ms / wall-ms
conflation the clock module exists to prevent, so they fail here.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories whose Python sources must use observability.clock.
_CHECKED_ROOTS = ("src/repro", "benchmarks", "examples")

#: The only place allowed to touch the stdlib clock.
_ALLOWED = ("src/repro/observability/",)

_DIRECT_CLOCK = re.compile(
    r"\btime\.(?:time|perf_counter|perf_counter_ns|monotonic|monotonic_ns|process_time)\s*\("
)


def _python_sources() -> list[Path]:
    files: list[Path] = []
    for root in _CHECKED_ROOTS:
        files.extend(sorted((REPO_ROOT / root).rglob("*.py")))
    assert files, "lint roots resolved to no files — layout changed?"
    return files


@pytest.mark.obs
def test_no_direct_wall_clock_outside_observability():
    offenders = []
    for path in _python_sources():
        rel = path.relative_to(REPO_ROOT).as_posix()
        if rel.startswith(_ALLOWED):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if _DIRECT_CLOCK.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "direct wall-clock calls found (use repro.observability.clock):\n"
        + "\n".join(offenders)
    )
