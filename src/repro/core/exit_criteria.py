"""Pluggable exit criteria for the binary branch.

The paper gates exits on normalized entropy (Eq. 7).  The early-exit
literature uses several other confidence scores; this module makes the
criterion a first-class object so the calibration machinery and the
collaborative predictor work with any of them, and so the criterion
choice itself can be ablated (``benchmarks/test_ablation_exit_criteria``).

A criterion maps a batch of softmax vectors to per-sample *uncertainty*
scores in a fixed orientation — **lower means more confident** — so the
exit rule is uniformly ``score < τ``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .entropy import ThresholdCalibration, calibrate_threshold, normalized_entropy

Criterion = Callable[[np.ndarray], np.ndarray]


def entropy_criterion(probs: np.ndarray) -> np.ndarray:
    """The paper's Eq. 7: normalized entropy in [0, 1]."""
    return normalized_entropy(probs, axis=1)


def max_probability_criterion(probs: np.ndarray) -> np.ndarray:
    """1 − max softmax probability (BranchyNet's alternative score)."""
    probs = np.asarray(probs, dtype=np.float64)
    return 1.0 - probs.max(axis=1)


def margin_criterion(probs: np.ndarray) -> np.ndarray:
    """1 − (top1 − top2): small top-two margin means uncertain."""
    probs = np.asarray(probs, dtype=np.float64)
    if probs.shape[1] < 2:
        raise ValueError("margin criterion needs at least two classes")
    part = np.partition(probs, -2, axis=1)
    margin = part[:, -1] - part[:, -2]
    return 1.0 - margin


#: Registry for ablation harnesses and CLI surfaces.
EXIT_CRITERIA: dict[str, Criterion] = {
    "entropy": entropy_criterion,
    "max_probability": max_probability_criterion,
    "margin": margin_criterion,
}


def get_criterion(name: str) -> Criterion:
    """Look up a registered criterion by name."""
    if name not in EXIT_CRITERIA:
        raise KeyError(f"unknown exit criterion {name!r}; available: {sorted(EXIT_CRITERIA)}")
    return EXIT_CRITERIA[name]


def calibrate_criterion(
    criterion: Criterion,
    binary_probs: np.ndarray,
    binary_correct: np.ndarray,
    main_correct: np.ndarray,
    accuracy_tolerance: float = 0.02,
    min_overall_accuracy: Optional[float] = None,
) -> ThresholdCalibration:
    """Screen thresholds for an arbitrary criterion.

    Identical to the entropy calibration but with the criterion's scores
    substituted; returns the same :class:`ThresholdCalibration` record.
    """
    scores = criterion(binary_probs)
    return calibrate_threshold(
        scores,
        binary_correct,
        main_correct,
        accuracy_tolerance=accuracy_tolerance,
        min_overall_accuracy=min_overall_accuracy,
    )


def compare_criteria(
    binary_probs: np.ndarray,
    binary_correct: np.ndarray,
    main_correct: np.ndarray,
    accuracy_tolerance: float = 0.02,
) -> dict[str, ThresholdCalibration]:
    """Calibrate every registered criterion on the same data.

    The interesting output is the exit rate each achieves at equal
    accuracy tolerance — the criterion ablation's headline number.
    """
    return {
        name: calibrate_criterion(
            criterion,
            binary_probs,
            binary_correct,
            main_correct,
            accuracy_tolerance=accuracy_tolerance,
        )
        for name, criterion in EXIT_CRITERIA.items()
    }
