"""Table I harness: training results of LCRS across networks × datasets.

For each (network, dataset) cell this joint-trains the composite model,
calibrates the exit threshold on held-out data, and reports the same
columns as the paper: M_Acc, B_Acc, τ, exit %, M_size, B_size.  The
training curves collected along the way are the Figure 5 series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.system import LCRS, SystemReport
from ..observability.clock import now_s
from ..core.training import JointTrainingConfig, TrainingHistory
from ..data.synthetic import DATASET_NAMES, SPECS
from ..data import make_dataset
from ..models import MODEL_NAMES
from .paper_values import PAPER_CLAIMS, Table1Row, paper_table1_row
from .reporting import render_table, shape_check
from .scale import ExperimentScale, QUICK


@dataclass
class Table1Cell:
    """One trained (network, dataset) combination."""

    report: SystemReport
    history: TrainingHistory
    train_seconds: float
    paper: Optional[Table1Row] = None


@dataclass
class Table1Result:
    """All cells plus rendering and shape-checking."""

    cells: dict[tuple[str, str], Table1Cell] = field(default_factory=dict)
    scale_name: str = ""

    def add(self, cell: Table1Cell) -> None:
        self.cells[(cell.report.network, cell.report.dataset)] = cell

    def render(self) -> str:
        rows = []
        for (network, dataset), cell in self.cells.items():
            r = cell.report
            p = cell.paper
            rows.append(
                [
                    f"{network}/{dataset}",
                    f"{100 * r.main_accuracy:.2f}",
                    f"{100 * r.binary_accuracy:.2f}",
                    f"{r.threshold:.4f}",
                    f"{100 * r.exit_rate:.0f}",
                    f"{r.main_size_mb:.3f}",
                    f"{r.binary_size_mb:.3f}",
                    f"{r.compression_ratio:.1f}x",
                    f"{p.main_accuracy:.1f}/{p.binary_accuracy:.1f}" if p else "-",
                    f"{p.exit_percent:.0f}" if p else "-",
                ]
            )
        return render_table(
            [
                "network/dataset",
                "M_Acc%",
                "B_Acc%",
                "tau",
                "Exit%",
                "M_size(MB)",
                "B_size(MB)",
                "ratio",
                "paper M/B",
                "paper Exit%",
            ],
            rows,
            title=f"Table I — training results (scale={self.scale_name})",
        )

    # ------------------------------------------------------------------
    # Qualitative shape of the paper's claims
    # ------------------------------------------------------------------
    def shape_checks(self) -> list[str]:
        lines = []
        lo, hi = PAPER_CLAIMS["compression_ratio_range"]
        ratios = [c.report.compression_ratio for c in self.cells.values()]
        in_band = [r for r in ratios if lo * 0.7 <= r <= hi * 1.3]
        # 100-class cells sit slightly under the band: their float
        # classifier head (the always-fp32 last layer, §IV-D.3) grows
        # with |C| and dominates the small bundle.
        lines.append(
            shape_check(
                f"compression ratios {min(ratios):.1f}–{max(ratios):.1f}x track "
                f"the paper's {lo:.0f}–{hi:.0f}x band "
                f"({len(in_band)}/{len(ratios)} cells within ±30%)",
                min(ratios) >= 8.0 and len(in_band) >= int(0.75 * len(ratios)),
            )
        )
        # The B-trails-M claim is about *converged* training: at reduced
        # scales the deep main branches are still climbing while the
        # BN-normalized binary branch converges in 1-2 epochs, so the
        # gap is only meaningful where the main branch has clearly
        # learned (see EXPERIMENTS.md for the standard-scale grid).
        converged = [
            c for c in self.cells.values() if c.report.main_accuracy > 0.5
        ]
        if converged:
            gaps = [
                c.report.main_accuracy - c.report.binary_accuracy
                for c in converged
            ]
            lines.append(
                shape_check(
                    f"binary branch trails the main branch on converged cells "
                    f"({len(converged)}/{len(self.cells)}; mean gap "
                    f"{100 * float(np.mean(gaps)):.1f} pts)",
                    float(np.mean(gaps)) >= -0.01,
                )
            )
        exits = [c.report.exit_rate for c in self.cells.values()]
        lines.append(
            shape_check(
                f"exit rates {100 * min(exits):.0f}–{100 * max(exits):.0f}% are "
                "substantial (most samples answer on the browser)",
                float(np.mean(exits)) >= 0.5,
            )
        )
        collab = [
            c.report.collaborative_accuracy >= c.report.binary_accuracy - 0.02
            for c in self.cells.values()
        ]
        lines.append(
            shape_check(
                "collaboration recovers accuracy lost by the binary branch",
                all(collab),
            )
        )
        return lines


def run_table1_cell(
    network: str,
    dataset: str,
    scale: ExperimentScale = QUICK,
    seed: int = 0,
    accuracy_tolerance: float = 0.01,
) -> Table1Cell:
    """Train and evaluate one Table I cell."""
    n_train, n_test = scale.samples_for(dataset)
    train, test = make_dataset(dataset, n_train, n_test, seed=seed)
    # The deep plain stacks train more stably at a lower main-branch LR.
    lr_main = 1e-3 if network in ("resnet18", "vgg16") else 2e-3
    config = JointTrainingConfig(
        epochs=scale.epochs_for(network, dataset),
        batch_size=scale.batch_size,
        lr_main=lr_main,
        lr_binary=2e-3,
        seed=seed,
    )
    system = LCRS.build(network, train, training_config=config, dataset_name=dataset, seed=seed)

    start = now_s()
    history = system.fit(train, test)
    elapsed = now_s() - start

    system.calibrate(test, accuracy_tolerance=accuracy_tolerance)
    report = system.report(test)

    try:
        paper = paper_table1_row(network, dataset)
    except KeyError:
        paper = None
    return Table1Cell(report=report, history=history, train_seconds=elapsed, paper=paper)


def run_table1(
    networks: Sequence[str] = MODEL_NAMES,
    datasets: Sequence[str] = DATASET_NAMES,
    scale: ExperimentScale = QUICK,
    seed: int = 0,
    verbose: bool = False,
) -> Table1Result:
    """Regenerate Table I over the requested grid."""
    result = Table1Result(scale_name=scale.name)
    for network in networks:
        for dataset in datasets:
            if verbose:
                print(f"[table1] training {network}/{dataset} ...", flush=True)
            cell = run_table1_cell(network, dataset, scale=scale, seed=seed)
            result.add(cell)
            if verbose:
                r = cell.report
                print(
                    f"[table1]   M={r.main_accuracy:.3f} B={r.binary_accuracy:.3f} "
                    f"exit={r.exit_rate:.2f} ratio={r.compression_ratio:.1f}x "
                    f"({cell.train_seconds:.0f}s)",
                    flush=True,
                )
    return result
