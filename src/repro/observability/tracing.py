"""Span-based request tracing for the collaborative serving path.

Every chunk of samples flowing through
:meth:`~repro.runtime.session.LCRSDeployment.run_session` (and, on the
shared edge, through :class:`~repro.runtime.scheduler.EdgeScheduler`)
gets a **trace id**; the work done on its behalf is recorded as nested
**spans** — ``chunk`` → ``stem`` / ``binary_branch`` / ``entropy_gate``
/ ``codec.encode`` / ``link.exchange`` (one ``link.attempt`` child per
transport attempt, so retries are visible individually) on the device
track, and ``sched.queue_wait`` / ``trunk.batch`` on the edge track,
correlated back to the device by the trace id carried in the request
frame.

Each span carries **two clocks**, never mixed: ``wall_*`` fields are
host-CPU time from :mod:`repro.observability.clock`; ``sim_*`` fields
are the latency engine's priced milliseconds (set explicitly by the
instrumentation, since simulated durations are computed by the pricing
model, not observed).  Exporters (:mod:`repro.observability.export`)
lay the timeline out in simulated time — the clock the paper's figures
are drawn in — and keep wall time in the span attributes.

The default recorder is :data:`NULL_RECORDER`: ``enabled`` is False and
every operation is a no-op on shared singletons, so the untraced hot
loop pays one attribute check and zero allocations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .clock import now_ms
from .metrics import MetricsRegistry

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TelemetrySummary",
    "Tracer",
]


@dataclass
class Span:
    """One timed unit of work inside a trace.

    ``span_id`` orders spans by *start* (monotonic per recorder), which
    makes span sequences deterministic under seeded runs even though
    wall durations are not.  ``sim_start_ms``/``sim_ms`` stay ``None``
    until the instrumentation prices the span on the simulated clock.
    """

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    track: str
    wall_start_ms: float
    wall_ms: float = 0.0
    sim_start_ms: Optional[float] = None
    sim_ms: Optional[float] = None
    attrs: dict[str, object] = field(default_factory=dict)

    def set(self, **attrs: object) -> None:
        """Attach structured attributes (entropy, served_by, batch id…)."""
        self.attrs.update(attrs)

    def set_sim(
        self, start_ms: Optional[float] = None, dur_ms: Optional[float] = None
    ) -> None:
        """Place the span on the simulated timeline."""
        if start_ms is not None:
            self.sim_start_ms = float(start_ms)
        if dur_ms is not None:
            self.sim_ms = float(dur_ms)

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "track": self.track,
            "wall_start_ms": self.wall_start_ms,
            "wall_ms": self.wall_ms,
            "sim_start_ms": self.sim_start_ms,
            "sim_ms": self.sim_ms,
            "attrs": dict(self.attrs),
        }


class _SpanContext:
    """Context-manager shim so ``with tracer.span(...) as s:`` nests."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer.end_span(self._span)


class _NullSpan:
    """Inert span: accepts the whole :class:`Span` surface, records nothing."""

    __slots__ = ()
    attrs: dict[str, object] = {}
    sim_start_ms = sim_ms = None
    wall_start_ms = wall_ms = 0.0
    name = trace_id = track = ""
    span_id = 0
    parent_id = None

    def set(self, **attrs: object) -> None:
        pass

    def set_sim(self, start_ms=None, dur_ms=None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every call is a no-op on shared singletons.

    Instrumentation sites gate their span bookkeeping on
    ``recorder.enabled``, so a deployment without tracing allocates
    nothing per sample and the serving loop's only overhead is the
    boolean check.
    """

    enabled = False

    def new_trace(self) -> str:
        return ""

    def start_span(self, name, track="main", trace_id="", parent=None, **attrs):
        return _NULL_SPAN

    def end_span(self, span) -> None:
        pass

    def span(self, name, track="main", trace_id="", **attrs):
        return _NULL_SPAN

    def add_span(self, name, track, trace_id="", **kwargs):
        return _NULL_SPAN

    def spans(self) -> list[Span]:
        return []


#: Shared disabled recorder — the default everywhere.
NULL_RECORDER = NullRecorder()


class Tracer:
    """In-memory span recorder with per-track nesting stacks.

    Single-threaded by design (the serving loops are synchronous and the
    lockstep concurrency driver interleaves sessions in one thread);
    nesting is tracked per *track* so interleaved sessions cannot
    corrupt each other's parentage.  Span ids and trace ids are
    monotonic counters — deterministic for a given call sequence.

    The tracer owns a :class:`MetricsRegistry`; closing a span feeds the
    ``span.<name>.wall_ms`` histogram (and ``span.<name>.sim_ms`` when
    the span was priced), so a traced run yields p50/p95/p99 summaries
    for free.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._spans: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._stacks: dict[str, list[Span]] = {}

    # -- trace / span lifecycle ----------------------------------------
    def new_trace(self) -> str:
        return f"t{next(self._trace_ids):06d}"

    def start_span(
        self,
        name: str,
        track: str = "main",
        trace_id: str = "",
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """Open a span; it nests under the track's innermost open span."""
        stack = self._stacks.setdefault(track, [])
        if parent is None and stack:
            parent = stack[-1]
        span = Span(
            name=name,
            trace_id=trace_id or (parent.trace_id if parent is not None else ""),
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent is not None else None,
            track=track,
            wall_start_ms=now_ms(),
            attrs=dict(attrs),
        )
        self._spans.append(span)  # start order == span_id order
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.wall_ms = now_ms() - span.wall_start_ms
        stack = self._stacks.get(span.track, [])
        if span in stack:
            # Close any children left open (defensive; balanced use pops one).
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        self.metrics.histogram(f"span.{span.name}.wall_ms").observe(span.wall_ms)
        if span.sim_ms is not None:
            self.metrics.histogram(f"span.{span.name}.sim_ms").observe(span.sim_ms)

    def span(
        self, name: str, track: str = "main", trace_id: str = "", **attrs: object
    ) -> _SpanContext:
        """``with tracer.span("stem", ...) as s:`` — start/end bracketed."""
        return _SpanContext(self, self.start_span(name, track, trace_id, **attrs))

    def add_span(
        self,
        name: str,
        track: str,
        trace_id: str = "",
        sim_start_ms: Optional[float] = None,
        sim_ms: Optional[float] = None,
        wall_ms: float = 0.0,
        parent: Optional[Span] = None,
        **attrs: object,
    ) -> Span:
        """Record a complete span in one call (simulated-time events).

        Used by the edge scheduler, whose queue-wait and batch-execution
        intervals exist on the simulated clock only and are fully known
        when recorded.
        """
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent is not None else None,
            track=track,
            wall_start_ms=now_ms(),
            wall_ms=wall_ms,
            sim_start_ms=sim_start_ms,
            sim_ms=sim_ms,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self.metrics.histogram(f"span.{name}.wall_ms").observe(wall_ms)
        if sim_ms is not None:
            self.metrics.histogram(f"span.{name}.sim_ms").observe(sim_ms)
        return span

    # -- results -------------------------------------------------------
    def spans(self) -> list[Span]:
        """All recorded spans in start (== span id) order."""
        return list(self._spans)

    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id (spans without one are omitted)."""
        grouped: dict[str, list[Span]] = {}
        for span in self._spans:
            if span.trace_id:
                grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def reset(self) -> None:
        self._spans = []
        self._stacks = {}
        self.metrics.reset()

    def summary(self) -> "TelemetrySummary":
        return TelemetrySummary.from_tracer(self)


@dataclass
class TelemetrySummary:
    """What a traced run did, in aggregate — the ``SessionResult.telemetry``.

    ``by_name`` maps span name → {count, wall/sim totals}; ``metrics``
    is the tracer registry's snapshot (histogram percentiles included).
    """

    spans: int
    traces: int
    by_name: dict[str, dict[str, object]]
    metrics: dict[str, object]

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TelemetrySummary":
        by_name: dict[str, dict[str, object]] = {}
        trace_ids: set[str] = set()
        for span in tracer.spans():
            if span.trace_id:
                trace_ids.add(span.trace_id)
            row = by_name.setdefault(
                span.name, {"count": 0, "wall_ms": 0.0, "sim_ms": 0.0}
            )
            row["count"] += 1
            row["wall_ms"] += span.wall_ms
            if span.sim_ms is not None:
                row["sim_ms"] += span.sim_ms
        return cls(
            spans=len(tracer.spans()),
            traces=len(trace_ids),
            by_name=by_name,
            metrics=tracer.metrics.as_dict(),
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "spans": self.spans,
            "traces": self.traces,
            "by_name": {k: dict(v) for k, v in sorted(self.by_name.items())},
            "metrics": self.metrics,
        }
