"""§IV-D.1 ablation — one binary branch vs two.

The paper's expectation argument: a second branch deeper in the main
network forces the browser to load and execute the intervening
full-precision layers, and adjacent branches add little exit-rate lift,
so E_e2 − E_e1 > 0.  Swept across all four networks and several lift
assumptions.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_branch_count
from repro.models import MODEL_NAMES


def test_branch_count_ablation(benchmark, announce):
    results = benchmark.pedantic(
        lambda: {net: run_branch_count(net) for net in MODEL_NAMES},
        rounds=1,
        iterations=1,
    )
    blocks = []
    for net, result in results.items():
        blocks.append(result.render())
        blocks.extend(result.shape_checks())
    announce(*blocks)

    for net, result in results.items():
        assert result.two_branch_ms > result.one_branch_ms, net

    # Even granting the second branch an implausibly generous conditional
    # exit lift, the cold-start load cost dominates.
    for lift in (0.05, 0.15, 0.30):
        generous = run_branch_count("alexnet", exit_lift=lift)
        assert generous.two_branch_ms > generous.one_branch_ms, lift


def test_benchmark_expectation_model(benchmark):
    benchmark(lambda: run_branch_count("vgg16"))
