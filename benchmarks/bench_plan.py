"""Compiled-plan vs interpreter serving benchmark → ``BENCH_plan.json``.

Measures what ``SessionConfig.compile_plan`` buys on the batched serving
path: the same calibrated LeNet deployment runs the same 64-image
session through the interpreter (``compile_plan=False``) and through
the trace-compiled fused plans (``compile_plan=True``), interleaved
A/B so machine noise hits both cells alike.  The reported speedup is
the *median of pairwise ratios* — the only estimator that stays stable
on shared hardware — and ``bit_identical`` asserts the two paths
returned exactly the same predictions, entropies, and serving sources.

Also recorded: the per-fused-step wall times of the stem/branch plans
(where the compiled time goes), and the edge trunk's module-vs-plan
batch time.

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/bench_plan.py

Results land in ``BENCH_plan.json`` at the repo root.  The acceptance
bar for the plan compiler is a ≥3x single-thread batched-session
speedup over the interpreter cell measured in the same run.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_plan.json"

SESSION_BATCH = 64
AB_PAIRS = 15
TRUNK_REPEATS = 30


def _now_s():
    from repro.observability.clock import now_s

    return now_s()


def _build_system():
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset

    train, test = make_dataset("mnist", 600, 200, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(
            epochs=4, batch_size=64, lr_main=2e-3, seed=0
        ),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)
    return system, test


def bench_plan_session() -> dict:
    from repro.runtime import LCRSDeployment, SessionConfig, four_g

    system, test = _build_system()
    deployment = LCRSDeployment(system, four_g(seed=0).deterministic())
    images = test.images[:SESSION_BATCH]
    interp_cfg = SessionConfig(batch_size=SESSION_BATCH, compile_plan=False)
    plan_cfg = SessionConfig(batch_size=SESSION_BATCH, compile_plan=True)

    # Warm both cells: page-load bookkeeping, lazy numpy init, and — for
    # the plan cell — kernel build + plan compilation + verification.
    interp_warm = deployment.run_session(images, config=interp_cfg)
    plan_warm = deployment.run_session(images, config=plan_cfg)
    bit_identical = bool(
        (interp_warm.predictions == plan_warm.predictions).all()
        and [o.entropy for o in interp_warm.outcomes]
        == [o.entropy for o in plan_warm.outcomes]
        and [o.served_by for o in interp_warm.outcomes]
        == [o.served_by for o in plan_warm.outcomes]
    )

    interp_s, plan_s = [], []
    for _ in range(AB_PAIRS):
        t0 = _now_s()
        deployment.run_session(images, config=interp_cfg)
        interp_s.append(_now_s() - t0)
        t0 = _now_s()
        deployment.run_session(images, config=plan_cfg)
        plan_s.append(_now_s() - t0)
    interp_med = float(np.median(interp_s))
    plan_med = float(np.median(plan_s))
    speedup = float(np.median([a / b for a, b in zip(interp_s, plan_s)]))

    # Per-fused-step attribution: reset the plan counters, replay once,
    # and record where the compiled time goes.
    stem_plan = deployment.browser.stem_engine.plan_for(SESSION_BATCH)
    branch_plan = deployment.browser.branch_engine.plan_for(SESSION_BATCH)
    for plan in (stem_plan, branch_plan):
        plan.counters.reset()
    deployment.run_session(images, config=plan_cfg)

    return {
        "network": "lenet",
        "num_samples": SESSION_BATCH,
        "batch_size": SESSION_BATCH,
        "ab_pairs": AB_PAIRS,
        "exit_rate": plan_warm.exit_rate,
        "bit_identical": bit_identical,
        "interpreter": {
            "seconds_median": interp_med,
            "samples_per_s": SESSION_BATCH / interp_med,
        },
        "plan": {
            "seconds_median": plan_med,
            "samples_per_s": SESSION_BATCH / plan_med,
        },
        "speedup": speedup,
        "stem_plan": stem_plan.describe(),
        "branch_plan": branch_plan.describe(),
        "trunk": bench_trunk(system, images),
    }


def bench_trunk(system, images) -> dict:
    """Edge trunk: module path vs the compiled trunk plan, same batch."""
    from repro.nn.autograd import Tensor, no_grad
    from repro.wasm import compile_trunk_plan

    model = system.model
    model.eval()
    with no_grad():
        features = model.stem(Tensor(images)).data.astype(np.float32)
    plan = compile_trunk_plan(
        model.main_trunk, tuple(features.shape[1:]), len(features)
    )

    with no_grad():
        reference = model.main_trunk(Tensor(features)).data
    bit_identical = bool(np.array_equal(plan.execute(features), reference))

    module_s, plan_s = [], []
    for _ in range(TRUNK_REPEATS):
        t0 = _now_s()
        with no_grad():
            model.main_trunk(Tensor(features))
        module_s.append(_now_s() - t0)
        t0 = _now_s()
        plan.execute(features)
        plan_s.append(_now_s() - t0)
    return {
        "batch_size": len(features),
        "bit_identical": bit_identical,
        "module_ms_median": float(np.median(module_s)) * 1e3,
        "plan_ms_median": float(np.median(plan_s)) * 1e3,
        "speedup": float(np.median([a / b for a, b in zip(module_s, plan_s)])),
        "plan_steps": plan.describe()["steps"],
    }


def main() -> dict:
    from repro.wasm import backend_available, backend_error

    if not backend_available():
        raise SystemExit(f"C kernel backend unavailable: {backend_error()}")

    results = {
        "benchmark": "bench_plan",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "session": bench_plan_session(),
    }
    OUTPUT_PATH.write_text(json.dumps(results, indent=2) + "\n")

    s = results["session"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"run_session (LeNet, batch {s['batch_size']}): "
        f"interpreter {s['interpreter']['samples_per_s']:.1f} samples/s, "
        f"compiled plans {s['plan']['samples_per_s']:.1f} samples/s — "
        f"{s['speedup']:.2f}x, bit_identical={s['bit_identical']}"
    )
    t = s["trunk"]
    print(
        f"edge trunk (batch {t['batch_size']}): "
        f"module {t['module_ms_median']:.2f}ms vs plan {t['plan_ms_median']:.2f}ms — "
        f"{t['speedup']:.2f}x, bit_identical={t['bit_identical']}"
    )
    return results


if __name__ == "__main__":
    main()
