"""Parallel edge benchmark → ``BENCH_parallel.json``.

Measures the worker-pool scaling of the shared edge trunk via
:func:`repro.experiments.scale.run_worker_scaling`: a saturating burst
of miss-path batch frames served at 1/2/4 workers, reporting makespan,
throughput, speedup over serial, the M/M/c capacity cross-check
(measured throughput over ``c / service_time`` — 1.0 when the request
count divides evenly), and the bit-identity flag the determinism story
promises.  The acceptance bar recorded here: 4-worker trunk throughput
≥ 2.5× single-worker with bit-identical predictions.

A second section times the intra-op ``num_threads`` knob of the blocked
XNOR-popcount kernels through a real branch-engine forward (wall clock
via :mod:`repro.observability.clock`) and checks the outputs are
byte-identical at every thread count.

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/bench_parallel.py

Worker-scaling time is *simulated* (deterministic for the fixed seed);
only the intra-op section is machine-dependent wall-clock.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_parallel.json"

WORKERS = (1, 2, 4)
REQUESTS = 16
BATCH_SIZE = 4
THREAD_COUNTS = (1, 2, 4)
FORWARD_REPEATS = 5
SEED = 0
SPEEDUP_FLOOR = 2.5


def _build_system():
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset

    train, test = make_dataset("mnist", 600, 200, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(
            epochs=4, batch_size=64, lr_main=2e-3, seed=0
        ),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)
    return system, test


def bench_worker_scaling(system, test) -> dict:
    from repro.experiments import run_worker_scaling

    result = run_worker_scaling(
        system,
        test.images[: REQUESTS * BATCH_SIZE],
        workers=WORKERS,
        requests=REQUESTS,
        batch_size=BATCH_SIZE,
    )
    quad = result.point(max(WORKERS))
    record = result.as_dict()
    record["headline"] = {
        "workers": quad.workers,
        "speedup_vs_serial": quad.speedup_vs_serial,
        "bit_identical": quad.bit_identical,
        "meets_floor": quad.speedup_vs_serial >= SPEEDUP_FLOOR
        and quad.bit_identical,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    return record


def bench_intra_op_threads(system, test) -> dict:
    """Wall-time the branch engine's forward across num_threads values.

    On a single-core host the wall times will not scale; the section
    exists to record that the knob never changes a bit of output and to
    document per-thread-count wall cost where cores are available.
    """
    import numpy as np

    from repro.observability.clock import now_s
    from repro.runtime import build_lcrs_assets
    from repro.wasm import WasmModel

    assets = build_lcrs_assets(system.model)
    images = test.images[:32].astype(np.float32)
    stem = WasmModel.load(assets.stem_payload)
    features = stem.forward(images)

    baseline = None
    points = []
    for threads in THREAD_COUNTS:
        engine = WasmModel.load(assets.branch_payload, num_threads=threads)
        out = engine.forward(features)  # warm caches before timing
        best = float("inf")
        for _ in range(FORWARD_REPEATS):
            t0 = now_s()
            out = engine.forward(features)
            best = min(best, now_s() - t0)
        if baseline is None:
            baseline = out
        points.append(
            {
                "num_threads": threads,
                "forward_wall_ms": best * 1e3,
                "bit_identical": out.tobytes() == baseline.tobytes(),
            }
        )
    return {"samples": len(images), "points": points}


def main() -> None:
    system, test = _build_system()
    scaling = bench_worker_scaling(system, test)
    record = {
        "benchmark": "parallel",
        "config": {
            "workers": list(WORKERS),
            "requests": REQUESTS,
            "batch_size": BATCH_SIZE,
            "thread_counts": list(THREAD_COUNTS),
            "seed": SEED,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": {
            "worker_scaling": scaling,
            "intra_op_threads": bench_intra_op_threads(system, test),
        },
    }
    OUTPUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    headline = scaling["headline"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"headline: {headline['speedup_vs_serial']:.2f}x trunk throughput at "
        f"{headline['workers']} workers "
        f"(bit_identical={headline['bit_identical']}, "
        f"floor {SPEEDUP_FLOOR}x met={headline['meets_floor']})"
    )
    if not headline["meets_floor"]:
        raise SystemExit("parallel speedup floor not met")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
