"""Unit tests for the Module system and standard layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModuleSystem:
    def test_parameter_discovery(self, rng):
        layer = nn.Conv2d(3, 4, 3, rng=rng)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_parameter_names(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng), nn.Linear(4, 5, rng=rng))
        names = {n for n, _ in model.named_parameters()}
        assert "0.weight" in names and "1.bias" in names

    def test_num_parameters(self, rng):
        layer = nn.Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Dropout(0.5), nn.Sequential(nn.Dropout(0.5)))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        layer = nn.Linear(3, 2, rng=rng)
        layer(Tensor(np.ones((1, 3), dtype=np.float32))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        a = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng), nn.BatchNorm2d(2))
        b = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(99)), nn.BatchNorm2d(2))
        state = a.state_dict()
        b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_includes_buffers(self, rng):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_load_state_dict_rejects_unknown_key(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(1)})

    def test_load_state_dict_rejects_shape_mismatch(self, rng):
        layer = nn.Linear(2, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.load_state_dict({"weight": np.zeros((3, 3), dtype=np.float32)})

    def test_repr_contains_children(self, rng):
        model = nn.Sequential(nn.ReLU())
        assert "ReLU" in repr(model)


class TestSequential:
    def test_order_and_len(self, rng):
        model = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(model) == 2
        assert isinstance(model[0], nn.ReLU)

    def test_append(self, rng):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.Flatten())
        assert len(model) == 2
        assert isinstance(model[1], nn.Flatten)

    def test_iteration(self):
        mods = [nn.ReLU(), nn.Flatten()]
        model = nn.Sequential(*mods)
        assert list(model) == mods

    def test_forward_chains(self, rng):
        model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU())
        out = model(Tensor(np.random.randn(2, 3).astype(np.float32)))
        assert out.shape == (2, 4)
        assert (out.data >= 0).all()


class TestConv2dLayer:
    def test_output_shape_helper_matches_forward(self, rng):
        layer = nn.Conv2d(3, 8, 5, stride=2, padding=2, rng=rng)
        x = Tensor(np.zeros((1, 3, 17, 17), dtype=np.float32))
        out = layer(x)
        assert out.shape[1:] == layer.output_shape(17, 17)

    def test_no_bias(self, rng):
        layer = nn.Conv2d(1, 2, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_repr(self, rng):
        assert "Conv2d(3, 8" in repr(nn.Conv2d(3, 8, 3, rng=rng))


class TestOtherLayers:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(7, 3, rng=rng)
        assert layer(Tensor(np.zeros((5, 7), dtype=np.float32))).shape == (5, 3)

    def test_maxpool_default_stride(self):
        pool = nn.MaxPool2d(2)
        assert pool.stride == 2

    def test_batchnorm2d_buffers_move_in_training(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.randn(16, 2, 3, 3).astype(np.float32) + 5)
        bn.train()
        bn(x)
        assert (bn.running_mean != 0).any()

    def test_batchnorm1d_on_features(self, rng):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(np.random.randn(8, 4).astype(np.float32)))
        assert out.shape == (8, 4)

    def test_dropout_respects_mode(self):
        drop = nn.Dropout(0.9)
        x = Tensor(np.ones((100,), dtype=np.float32))
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))
        assert out.shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert nn.Identity()(x) is x

    def test_global_avg_pool_layer(self):
        out = nn.GlobalAvgPool2d()(Tensor(np.ones((2, 3, 4, 4), dtype=np.float32)))
        np.testing.assert_array_equal(out.data, np.ones((2, 3)))

    def test_avgpool_layer(self):
        out = nn.AvgPool2d(2)(Tensor(np.ones((1, 1, 4, 4), dtype=np.float32)))
        assert out.shape == (1, 1, 2, 2)


class TestLosses:
    def test_cross_entropy_loss_module(self):
        loss_fn = nn.CrossEntropyLoss()
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        loss = loss_fn(logits, np.array([1, 2]))
        np.testing.assert_allclose(loss.item(), np.log(4), rtol=1e-5)

    def test_joint_loss_is_weighted_sum(self):
        joint = nn.JointLoss(main_weight=2.0, binary_weight=0.5)
        main = Tensor(np.zeros((2, 3), dtype=np.float32))
        binary = Tensor(np.zeros((2, 3), dtype=np.float32))
        y = np.array([0, 1])
        total = joint(main, binary, y).item()
        np.testing.assert_allclose(total, 2.5 * np.log(3), rtol=1e-5)

    def test_joint_loss_components(self):
        joint = nn.JointLoss()
        main = Tensor(np.zeros((1, 2), dtype=np.float32))
        binary = Tensor(np.zeros((1, 2), dtype=np.float32))
        total, lm, lb = joint.components(main, binary, np.array([0]))
        np.testing.assert_allclose(total.item(), lm.item() + lb.item(), rtol=1e-6)
