"""Table II — average end-to-end latency on the mobile web browser.

Cold-start sessions over 100 samples on the paper's 4G link (10 Mb/s
down, 3 Mb/s up), LCRS vs Neurosurgeon/Edgent/mobile-only on all four
networks.  The timed kernel is the latency engine pricing one full
comparison grid.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_latency_comparison


def test_table2_end_to_end_latency(benchmark, announce):
    comparison = benchmark.pedantic(
        lambda: run_latency_comparison(num_samples=100, seed=0),
        rounds=1,
        iterations=1,
    )
    announce(comparison.table2(), *comparison.shape_checks())

    for net in comparison.networks():
        lcrs = comparison.mean_latency(net, "lcrs")
        others = {
            a: comparison.mean_latency(net, a)
            for a in ("neurosurgeon", "edgent", "mobile-only")
        }
        # Paper shape: LCRS wins on every network, by 3x-61x overall.
        assert lcrs < min(others.values()), net
        assert min(others.values()) / lcrs > 1.5, net
        # LCRS stays interactive; mobile-only degrades with model size.
        assert lcrs < 1000, net
    assert (
        comparison.mean_latency("alexnet", "mobile-only")
        > comparison.mean_latency("lenet", "mobile-only")
    )


def test_benchmark_plan_pricing(benchmark):
    """Time one simulate_plan call (the engine's inner loop)."""
    from repro.experiments import build_network_assets, build_plans
    from repro.runtime import EDGE_SERVER, MOBILE_BROWSER_WASM, four_g, simulate_plan

    assets = build_network_assets("resnet18")
    link = four_g(seed=0)
    plan = build_plans(assets, link)["lcrs"]
    miss = [i % 4 == 0 for i in range(100)]
    benchmark(
        lambda: simulate_plan(
            plan, 100, link, MOBILE_BROWSER_WASM, EDGE_SERVER, miss_mask=miss
        )
    )
