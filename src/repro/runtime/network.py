"""Wireless link model between the mobile web browser and the edge server.

Table II/III's setting: "4G with a downlink of 10 Mb/s and an uplink of
3 Mb/s".  The model is bandwidth + RTT with multiplicative log-normal
jitter ("in a real environment, the network bandwidth is instability",
§IV-D.1) — enough to reproduce the latency fluctuations of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np


@dataclass
class NetworkLink:
    """Point-to-point link with asymmetric bandwidth and jitter.

    ``jitter_sigma`` is the standard deviation of the log-normal
    multiplier applied to each transfer's duration (0 disables jitter,
    making the link deterministic for unit tests).
    """

    name: str
    downlink_bps: float
    uplink_bps: float
    rtt_ms: float
    jitter_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.rtt_ms < 0:
            raise ValueError("rtt_ms must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def _jitter(self) -> float:
        if self.jitter_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self.jitter_sigma))

    def download_ms(self, num_bytes: float) -> float:
        """Edge/cloud → browser transfer time, including half an RTT."""
        return (num_bytes * 8 / self.downlink_bps * 1e3 + self.rtt_ms / 2) * self._jitter()

    def upload_ms(self, num_bytes: float) -> float:
        """Browser → edge/cloud transfer time, including half an RTT."""
        return (num_bytes * 8 / self.uplink_bps * 1e3 + self.rtt_ms / 2) * self._jitter()

    def round_trip_ms(self) -> float:
        """A bare control-message round trip."""
        return self.rtt_ms * self._jitter()

    def deterministic(self) -> "NetworkLink":
        """A jitter-free copy (expectation analysis, tests)."""
        return replace(self, jitter_sigma=0.0)

    def reseeded(self, seed: int) -> "NetworkLink":
        return replace(self, seed=seed)


def four_g(seed: int = 0, jitter_sigma: float = 0.15) -> NetworkLink:
    """The paper's evaluation link: 10 Mb/s down, 3 Mb/s up."""
    return NetworkLink(
        name="4g", downlink_bps=10e6, uplink_bps=3e6, rtt_ms=50.0,
        jitter_sigma=jitter_sigma, seed=seed,
    )


def wifi(seed: int = 0, jitter_sigma: float = 0.08) -> NetworkLink:
    return NetworkLink(
        name="wifi", downlink_bps=50e6, uplink_bps=20e6, rtt_ms=10.0,
        jitter_sigma=jitter_sigma, seed=seed,
    )


def three_g(seed: int = 0, jitter_sigma: float = 0.25) -> NetworkLink:
    return NetworkLink(
        name="3g", downlink_bps=2e6, uplink_bps=1e6, rtt_ms=120.0,
        jitter_sigma=jitter_sigma, seed=seed,
    )


LINK_PRESETS = {"4g": four_g, "wifi": wifi, "3g": three_g}
