"""Runtime-compiled C kernels backing the trace-compiled inference plans.

The plan compiler (``plan.py``) fuses each anchor op (conv / binary conv /
linear) with its adjacent elementwise ops into one flat step.  The hot
inner loops of those steps — window gather, bit packing, XNOR+popcount,
scale/bias/relu epilogues, pooling, batch-norm affines — live here as a
single C translation unit compiled once per process with the system C
compiler and loaded through :mod:`ctypes`.

Everything about the build is defensive:

* no compiler on ``PATH``, a failed compile, or ``REPRO_PLAN_NO_CC=1``
  in the environment simply raises :class:`KernelBackendError`; the plan
  compiler treats that as "plan unavailable" and the interpreter keeps
  serving requests;
* the shared object is cached under ``src/repro/wasm/_kernels/`` (git
  ignored) keyed by a hash of the source + flags, so repeated processes
  pay nothing; an unwritable tree falls back to the system temp dir;
* the flags pin IEEE semantics (``-fno-fast-math -ffp-contract=off``)
  because the plans promise *bit identity* with the NumPy interpreter,
  not just numerical closeness.  Each C formula mirrors one specific
  NumPy expression — see the comments in the source string — and every
  compiled plan is additionally probe-verified against the interpreter
  before it is ever used (``plan.py``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from shutil import which
from typing import Optional

__all__ = [
    "KernelBackendError",
    "backend_available",
    "backend_error",
    "get_backend",
    "kill_switch_engaged",
]


class KernelBackendError(RuntimeError):
    """The C kernel backend could not be built or was disabled."""


#: Environment variable that disables the C backend (and therefore all
#: compiled plans) without code changes — sessions fall back to the
#: interpreter transparently.
KILL_SWITCH = "REPRO_PLAN_NO_CC"

_CFLAGS = ("-O3", "-std=c99", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

# Bit layout note: activation bits are packed to match ``np.packbits``
# (MSB-first within each byte) viewed as little-endian uint64, so the
# weight/mask planes prepared in NumPy from the serialized bitplanes line
# up word-for-word.  Only popcount((a ^ b) & mask) is ever read, so the
# layout just has to be *consistent* across the three planes.
_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HAVE_X86 1
#endif

#define API __attribute__((visibility("default")))

/* Zero-padded copy: interior rows only — the destination borders were
   zero-initialised once at arena creation and are never written again. */
API void pad_nchw(const float *x, float *xp,
                  long n, long c, long h, long w, long pad)
{
    long hp = h + 2 * pad, wp = w + 2 * pad;
    for (long i = 0; i < n * c; i++) {
        const float *src = x + i * h * w;
        float *dst = xp + i * hp * wp + pad * wp + pad;
        for (long iy = 0; iy < h; iy++)
            memcpy(dst + iy * wp, src + iy * w, (size_t)w * sizeof(float));
    }
}

/* Position of logical bit j inside its 64-bit word under the
   np.packbits(MSB-first) + little-endian-u64 view convention. */
static inline uint64_t bitmask(long j)
{
    long within = j & 63;
    return 1ULL << (((within >> 3) << 3) + (7 - (within & 7)));
}

/* 8x8 bit-matrix transpose (Hacker's Delight 7-3): bit (8p+q) of the
   result is bit (8q+p) of the input.  Used to turn eight movemask bytes
   (one bit per *row*) into eight per-row bytes in packbits order. */
static inline uint64_t transpose8(uint64_t v)
{
    uint64_t t;
    t = (v ^ (v >> 7)) & 0x00AA00AA00AA00AAULL; v ^= t ^ (t << 7);
    t = (v ^ (v >> 14)) & 0x0000CCCC0000CCCCULL; v ^= t ^ (t << 14);
    t = (v ^ (v >> 28)) & 0x00000000F0F0F0F0ULL; v ^= t ^ (t << 28);
    return v;
}

/* Mirror of interpreter._im2col: zero-padded window gather into rows of
   length c*k*k, row index (i*oh + oy)*ow + ox, column (ci*k + ki)*k + kj.
   The kj loop is fringe-split (explicit zero-fill + unchecked copy) so
   the interior carries no per-element bounds branches. */
static inline void im2col_impl(const float *x, float *cols,
                               long n, long c, long h, long w,
                               long k, long stride, long pad,
                               long oh, long ow)
{
    for (long i = 0; i < n; i++) {
        const float *xi = x + i * c * h * w;
        float *crow = cols + i * oh * ow * c * k * k;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox++) {
                long ix0 = ox * stride - pad;
                long kj_lo = ix0 < 0 ? -ix0 : 0;
                long kj_hi = w - ix0 < k ? w - ix0 : k;
                if (kj_hi < kj_lo) kj_hi = kj_lo;
                for (long ci = 0; ci < c; ci++) {
                    const float *xc = xi + ci * h * w;
                    for (long ki = 0; ki < k; ki++) {
                        long iy = oy * stride + ki - pad;
                        if (iy < 0 || iy >= h) {
                            for (long kj = 0; kj < k; kj++) *crow++ = 0.0f;
                            continue;
                        }
                        const float *src = xc + iy * w + ix0;
                        if (kj_lo == 0 && kj_hi == k) {
                            /* full-width segment: constant trip count
                               when k is a literal (see clones below) */
                            for (long kj = 0; kj < k; kj++) crow[kj] = src[kj];
                            crow += k;
                            continue;
                        }
                        for (long kj = 0; kj < kj_lo; kj++) *crow++ = 0.0f;
                        for (long kj = kj_lo; kj < kj_hi; kj++) *crow++ = src[kj];
                        for (long kj = kj_hi; kj < k; kj++) *crow++ = 0.0f;
                    }
                }
            }
        }
    }
}

/* Constant-k clones let the compiler unroll (and for full-width rows
   vectorize) the k-element interior copies; k in {2,3,5,7} covers every
   conv in the model zoo. */
API void im2col_f32(const float *x, float *cols,
                    long n, long c, long h, long w,
                    long k, long stride, long pad, long oh, long ow)
{
    switch (k) {
    case 2: im2col_impl(x, cols, n, c, h, w, 2, stride, pad, oh, ow); break;
    case 3: im2col_impl(x, cols, n, c, h, w, 3, stride, pad, oh, ow); break;
    case 5: im2col_impl(x, cols, n, c, h, w, 5, stride, pad, oh, ow); break;
    case 7: im2col_impl(x, cols, n, c, h, w, 7, stride, pad, oh, ow); break;
    default: im2col_impl(x, cols, n, c, h, w, k, stride, pad, oh, ow); break;
    }
}

/* relu_mode 1 mirrors np.maximum(x, 0.0): NaN propagates, -0.0 -> +0.0.
   Branchless (data-dependent float branches mispredict ~50%). */
static inline float relu_max0(float v)
{
    float t = (v > 0.0f) ? v : 0.0f;
    return (v != v) ? v : t;
}

/* relu_mode 2 mirrors x * (x > 0): negatives -> -0.0, -inf -> NaN. */
static inline float relu_mask(float v)
{
    return v * ((v > 0.0f) ? 1.0f : 0.0f);
}

/* Epilogue after the conv matmul: optional per-channel scale, optional
   bias, optional relu, written back in NCHW. */
API void conv_post(const float *mm, const float *scale, const float *bias,
                   float *out, long n, long rows, long oc, int relu_mode)
{
    /* Channel-outer: the (rows, oc) GEMM block stays cache-resident for
       its strided reads while every NCHW write is contiguous. */
    for (long i = 0; i < n; i++) {
        const float *mi = mm + i * rows * oc;
        float *oi = out + i * oc * rows;
        for (long o = 0; o < oc; o++) {
            const float *mo = mi + o;
            float *oo = oi + o * rows;
            float sc = scale ? scale[o] : 1.0f;
            float bi = bias ? bias[o] : 0.0f;
            for (long r = 0; r < rows; r++) {
                float v = mo[r * oc];
                if (scale) v = v * sc;
                if (bias) v = v + bi;
                if (relu_mode == 1) v = relu_max0(v);
                else if (relu_mode == 2) v = relu_mask(v);
                oo[r] = v;
            }
        }
    }
}

/* Fused direct convolution for narrow output channels (oc <= 16):
   gathers the window straight from the zero-padded image and
   accumulates with sequential-K fmaf — the exact reduction OpenBLAS
   sgemm performs for these skinny shapes, so the result is bit-identical
   to the interpreter's im2col + np.matmul without materialising the cols
   matrix or the (rows, oc) GEMM block at all.  Padded positions
   contribute fmaf(+0, w, acc) just as the zero-filled cols entries do.
   The scale/bias/relu epilogue and the NCHW transpose happen in
   registers.  Weight layout: wt[kidx][lane] padded to 16 lanes.
   Probe verification (plan.py) guards the sequential-K assumption; if
   a BLAS swap ever changes the reduction order the plan compiler falls
   back to the im2col + np.matmul path. */
static void conv_direct_scalar(const float *xp, const float *wt,
                               const float *scale, const float *bias,
                               float *out,
                               long n, long c, long hp, long wp,
                               long k, long stride,
                               long oh, long ow, long oc, int relu_mode)
{
    long rows = oh * ow;
    for (long i = 0; i < n; i++) {
        const float *base = xp + i * c * hp * wp;
        float *oi = out + i * oc * rows;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox++) {
                long r = oy * ow + ox;
                for (long j = 0; j < oc; j++) {
                    float acc = 0.0f;
                    long kidx = 0;
                    for (long ci = 0; ci < c; ci++) {
                        const float *xc = base + ci * hp * wp;
                        for (long ki = 0; ki < k; ki++) {
                            const float *src =
                                xc + (oy * stride + ki) * wp + ox * stride;
                            for (long kj = 0; kj < k; kj++, kidx++)
                                acc = fmaf(src[kj], wt[kidx * 16 + j], acc);
                        }
                    }
                    if (scale) acc = acc * scale[j];
                    if (bias) acc = acc + bias[j];
                    if (relu_mode == 1) acc = relu_max0(acc);
                    else if (relu_mode == 2) acc = relu_mask(acc);
                    oi[j * rows + r] = acc;
                }
            }
        }
    }
}

#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
__attribute__((target("avx2,fma"))) static inline
void conv_direct_fma_impl(const float *xp, const float *wt,
                          const float *scale, const float *bias, float *out,
                          long n, long c, long hp, long wp,
                          long k, long stride,
                          long oh, long ow, long oc, int relu_mode)
{
    long rows = oh * ow;
    int two = oc > 8;
    __m256 zero = _mm256_setzero_ps();
    __m256 one = _mm256_set1_ps(1.0f);
    __m256 sc0 = scale ? _mm256_loadu_ps(scale) : one;
    __m256 sc1 = scale && two ? _mm256_loadu_ps(scale + 8) : one;
    __m256 bi0 = bias ? _mm256_loadu_ps(bias) : zero;
    __m256 bi1 = bias && two ? _mm256_loadu_ps(bias + 8) : zero;
    float tmp[16];
    for (long i = 0; i < n; i++) {
        const float *base = xp + i * c * hp * wp;
        float *oi = out + i * oc * rows;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox++) {
                long r = oy * ow + ox;
                __m256 a0 = zero, a1 = zero;
                const float *wk = wt;
                for (long ci = 0; ci < c; ci++) {
                    const float *xc = base + ci * hp * wp;
                    for (long ki = 0; ki < k; ki++) {
                        const float *src =
                            xc + (oy * stride + ki) * wp + ox * stride;
                        for (long kj = 0; kj < k; kj++, wk += 16) {
                            __m256 a = _mm256_set1_ps(src[kj]);
                            a0 = _mm256_fmadd_ps(a, _mm256_loadu_ps(wk), a0);
                            if (two)
                                a1 = _mm256_fmadd_ps(
                                    a, _mm256_loadu_ps(wk + 8), a1);
                        }
                    }
                }
                if (scale) {
                    a0 = _mm256_mul_ps(a0, sc0);
                    if (two) a1 = _mm256_mul_ps(a1, sc1);
                }
                if (bias) {
                    a0 = _mm256_add_ps(a0, bi0);
                    if (two) a1 = _mm256_add_ps(a1, bi1);
                }
                if (relu_mode == 1) {
                    /* np.maximum(x, 0): NaN propagates, -0 -> +0 */
                    __m256 gt = _mm256_cmp_ps(a0, zero, _CMP_GT_OQ);
                    __m256 nn = _mm256_cmp_ps(a0, a0, _CMP_UNORD_Q);
                    a0 = _mm256_blendv_ps(_mm256_blendv_ps(zero, a0, gt),
                                          a0, nn);
                    if (two) {
                        gt = _mm256_cmp_ps(a1, zero, _CMP_GT_OQ);
                        nn = _mm256_cmp_ps(a1, a1, _CMP_UNORD_Q);
                        a1 = _mm256_blendv_ps(_mm256_blendv_ps(zero, a1, gt),
                                              a1, nn);
                    }
                } else if (relu_mode == 2) {
                    /* x * (x > 0) */
                    __m256 m0 = _mm256_blendv_ps(
                        zero, one, _mm256_cmp_ps(a0, zero, _CMP_GT_OQ));
                    a0 = _mm256_mul_ps(a0, m0);
                    if (two) {
                        __m256 m1 = _mm256_blendv_ps(
                            zero, one, _mm256_cmp_ps(a1, zero, _CMP_GT_OQ));
                        a1 = _mm256_mul_ps(a1, m1);
                    }
                }
                _mm256_storeu_ps(tmp, a0);
                if (two) _mm256_storeu_ps(tmp + 8, a1);
                for (long j = 0; j < oc; j++) oi[j * rows + r] = tmp[j];
            }
        }
    }
}

/* Constant-k clones fully unroll the kj window walk (k is a loop bound,
   not a compile-time constant, in the generic body). */
__attribute__((target("avx2,fma"))) static
void conv_direct_fma(const float *xp, const float *wt,
                     const float *scale, const float *bias, float *out,
                     long n, long c, long hp, long wp,
                     long k, long stride,
                     long oh, long ow, long oc, int relu_mode)
{
    switch (k) {
    case 3:
        conv_direct_fma_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                             3, stride, oh, ow, oc, relu_mode);
        break;
    case 5:
        conv_direct_fma_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                             5, stride, oh, ow, oc, relu_mode);
        break;
    default:
        conv_direct_fma_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                             k, stride, oh, ow, oc, relu_mode);
        break;
    }
}

static const int32_t lanemask8[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
    {-1, -1, -1, -1, -1, -1, -1, -1},
};

__attribute__((target("avx2"))) static inline
__m256 relu_vec(__m256 a, int relu_mode, __m256 zero, __m256 one)
{
    if (relu_mode == 1) {
        /* np.maximum(x, 0): NaN propagates, -0 -> +0 */
        __m256 gt = _mm256_cmp_ps(a, zero, _CMP_GT_OQ);
        __m256 nn = _mm256_cmp_ps(a, a, _CMP_UNORD_Q);
        return _mm256_blendv_ps(_mm256_blendv_ps(zero, a, gt), a, nn);
    }
    if (relu_mode == 2) {
        /* x * (x > 0) */
        __m256 m = _mm256_blendv_ps(
            zero, one, _mm256_cmp_ps(a, zero, _CMP_GT_OQ));
        return _mm256_mul_ps(a, m);
    }
    return a;
}

/* Stride-1 variant: eight output *positions* per vector, one FMA chain
   per output channel.  The per-output accumulation order over the
   window (ci, ki, kj) is unchanged — each lane is an independent
   sequential-fmaf chain, so results stay bit-identical to the
   per-output kernel above — but eight chains run concurrently instead
   of one, hiding the FMA latency that bounds the broadcast-weight
   kernel.  Channels run in blocks of 8 register accumulators (weights
   are zero-padded to 16 lanes, so out-of-range channels compute
   harmlessly into dead registers). */
__attribute__((target("avx2,fma"))) static inline
void conv_direct_lanes_impl(const float *xp, const float *wt,
                            const float *scale, const float *bias,
                            float *out,
                            long n, long c, long hp, long wp,
                            long k, long oh, long ow, long oc,
                            int relu_mode)
{
    long rows = oh * ow;
    __m256 zero = _mm256_setzero_ps();
    __m256 one = _mm256_set1_ps(1.0f);
    for (long i = 0; i < n; i++) {
        const float *xi = xp + i * c * hp * wp;
        float *oi = out + i * oc * rows;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox += 8) {
                long nl = ow - ox < 8 ? ow - ox : 8;
                long r = oy * ow + ox;
                for (long cb = 0; cb < oc; cb += 8) {
                    __m256 a0 = zero, a1 = zero, a2 = zero, a3 = zero;
                    __m256 a4 = zero, a5 = zero, a6 = zero, a7 = zero;
                    const float *wk = wt + cb;
                    for (long ci = 0; ci < c; ci++) {
                        const float *xc = xi + ci * hp * wp;
                        for (long ki = 0; ki < k; ki++) {
                            const float *src = xc + (oy + ki) * wp + ox;
                            for (long kj = 0; kj < k; kj++, wk += 16) {
                                __m256 v;
                                if (nl == 8 || wp - ox - kj >= 8) {
                                    v = _mm256_loadu_ps(src + kj);
                                } else {
                                    v = _mm256_maskload_ps(
                                        src + kj,
                                        _mm256_loadu_si256(
                                            (const __m256i *)
                                            lanemask8[wp - ox - kj]));
                                }
                                a0 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[0]), a0);
                                a1 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[1]), a1);
                                a2 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[2]), a2);
                                a3 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[3]), a3);
                                a4 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[4]), a4);
                                a5 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[5]), a5);
                                a6 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[6]), a6);
                                a7 = _mm256_fmadd_ps(v, _mm256_set1_ps(wk[7]), a7);
                            }
                        }
                    }
                    __m256 accs[8] = {a0, a1, a2, a3, a4, a5, a6, a7};
                    long jmax = oc - cb < 8 ? oc - cb : 8;
                    for (long j = 0; j < jmax; j++) {
                        __m256 a = accs[j];
                        if (scale)
                            a = _mm256_mul_ps(a, _mm256_set1_ps(scale[cb + j]));
                        if (bias)
                            a = _mm256_add_ps(a, _mm256_set1_ps(bias[cb + j]));
                        a = relu_vec(a, relu_mode, zero, one);
                        float *op = oi + (cb + j) * rows + r;
                        if (nl == 8)
                            _mm256_storeu_ps(op, a);
                        else
                            _mm256_maskstore_ps(
                                op,
                                _mm256_loadu_si256(
                                    (const __m256i *)lanemask8[nl]), a);
                    }
                }
            }
        }
    }
}

__attribute__((target("avx2,fma"))) static
void conv_direct_lanes(const float *xp, const float *wt,
                       const float *scale, const float *bias, float *out,
                       long n, long c, long hp, long wp,
                       long k, long oh, long ow, long oc, int relu_mode)
{
    switch (k) {
    case 3:
        conv_direct_lanes_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                               3, oh, ow, oc, relu_mode);
        break;
    case 5:
        conv_direct_lanes_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                               5, oh, ow, oc, relu_mode);
        break;
    default:
        conv_direct_lanes_impl(xp, wt, scale, bias, out, n, c, hp, wp,
                               k, oh, ow, oc, relu_mode);
        break;
    }
}
#endif /* HAVE_X86 */

API void conv_direct(const float *xp, const float *wt,
                     const float *scale, const float *bias, float *out,
                     long n, long c, long hp, long wp,
                     long k, long stride,
                     long oh, long ow, long oc, int relu_mode)
{
#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        if (stride == 1) {
            conv_direct_lanes(xp, wt, scale, bias, out, n, c, hp, wp,
                              k, oh, ow, oc, relu_mode);
            return;
        }
        conv_direct_fma(xp, wt, scale, bias, out, n, c, hp, wp,
                        k, stride, oh, ow, oc, relu_mode);
        return;
    }
#endif
    conv_direct_scalar(xp, wt, scale, bias, out, n, c, hp, wp,
                       k, stride, oh, ow, oc, relu_mode);
}

/* Max pooling over non-overlapping-or-strided windows, valid region
   only (matches conv_geometry with pad 0).  tie_first=0 reproduces the
   interpreter's chained np.maximum (ties keep the accumulator, i.e. the
   earliest window element wins only through the chain semantics);
   tie_first=1 reproduces the framework's argmax/take_along_axis (first
   maximal element wins, NaN beats numbers). */
static inline void maxpool_impl(const float *x, float *out,
                                long n, long c, long h, long w,
                                long k, long stride, long oh, long ow,
                                int tie_first)
{
    for (long i = 0; i < n; i++) {
        for (long ci = 0; ci < c; ci++) {
            const float *xc = x + (i * c + ci) * h * w;
            float *op = out + (i * c + ci) * oh * ow;
            for (long oy = 0; oy < oh; oy++) {
                for (long ox = 0; ox < ow; ox++) {
                    long y0 = oy * stride, x0 = ox * stride;
                    float m = xc[y0 * w + x0];
                    for (long ki = 0; ki < k; ki++) {
                        for (long kj = 0; kj < k; kj++) {
                            if (ki == 0 && kj == 0) continue;
                            float v = xc[(y0 + ki) * w + (x0 + kj)];
                            if (tie_first) {
                                /* argmax semantics: first max wins, NaN
                                   beats numbers; branchless. */
                                float t = (v > m) ? v : m;
                                m = (v != v && m == m) ? v : t;
                            } else {
                                /* chained np.maximum: tie takes the new
                                   value, NaN accumulator sticks. */
                                float t = (m > v) ? m : v;
                                m = (m != m) ? m : t;
                            }
                        }
                    }
                    op[oy * ow + ox] = m;
                }
            }
        }
    }
}

#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
/* 2x2/stride-2 pool, eight output columns per iteration.  The window
   chain runs lanewise with the exact scalar tie/NaN semantics: each
   step is the branchless cmp+blendv transliteration of the tie_first
   expressions in maxpool_impl, so results match bit-for-bit. */
__attribute__((target("avx2"))) static
void maxpool_k2s2_avx2(const float *x, float *out,
                       long n, long c, long h, long w,
                       long oh, long ow, int tie_first)
{
    /* mtab[cnt] selects the first cnt lanes for maskload/maskstore;
       masked-off lanes never fault, so partial groups at the row end
       stay in bounds without a scalar tail. */
    static const int32_t mtab[9][8] = {
        {0, 0, 0, 0, 0, 0, 0, 0},
        {-1, 0, 0, 0, 0, 0, 0, 0},
        {-1, -1, 0, 0, 0, 0, 0, 0},
        {-1, -1, -1, 0, 0, 0, 0, 0},
        {-1, -1, -1, -1, 0, 0, 0, 0},
        {-1, -1, -1, -1, -1, 0, 0, 0},
        {-1, -1, -1, -1, -1, -1, 0, 0},
        {-1, -1, -1, -1, -1, -1, -1, 0},
        {-1, -1, -1, -1, -1, -1, -1, -1},
    };
    __m256i idx_ev = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
    for (long i = 0; i < n * c; i++) {
        const float *xc = x + i * h * w;
        float *op = out + i * oh * ow;
        for (long oy = 0; oy < oh; oy++) {
            const float *r0 = xc + (2 * oy) * w;
            const float *r1 = r0 + w;
            for (long ox = 0; ox < ow; ox += 8) {
                long nl = ow - ox < 8 ? ow - ox : 8;
                __m256 u0, u1, v0, v1;
                if (nl == 8) {
                    u0 = _mm256_loadu_ps(r0 + 2 * ox);
                    u1 = _mm256_loadu_ps(r0 + 2 * ox + 8);
                    v0 = _mm256_loadu_ps(r1 + 2 * ox);
                    v1 = _mm256_loadu_ps(r1 + 2 * ox + 8);
                } else {
                    long len = 2 * nl;
                    long c0 = len < 8 ? len : 8;
                    __m256i m0 = _mm256_loadu_si256((const __m256i *)mtab[c0]);
                    __m256i m1 = _mm256_loadu_si256((const __m256i *)mtab[len - c0]);
                    u0 = _mm256_maskload_ps(r0 + 2 * ox, m0);
                    u1 = _mm256_maskload_ps(r0 + 2 * ox + 8, m1);
                    v0 = _mm256_maskload_ps(r1 + 2 * ox, m0);
                    v1 = _mm256_maskload_ps(r1 + 2 * ox + 8, m1);
                }
                __m256 m = _mm256_permutevar8x32_ps(
                    _mm256_shuffle_ps(u0, u1, 0x88), idx_ev);
                __m256 wv[3];
                wv[0] = _mm256_permutevar8x32_ps(
                    _mm256_shuffle_ps(u0, u1, 0xDD), idx_ev);
                wv[1] = _mm256_permutevar8x32_ps(
                    _mm256_shuffle_ps(v0, v1, 0x88), idx_ev);
                wv[2] = _mm256_permutevar8x32_ps(
                    _mm256_shuffle_ps(v0, v1, 0xDD), idx_ev);
                if (tie_first) {
                    for (int s = 0; s < 3; s++) {
                        __m256 v = wv[s];
                        __m256 gt = _mm256_cmp_ps(v, m, _CMP_GT_OQ);
                        __m256 t = _mm256_blendv_ps(m, v, gt);
                        __m256 cond = _mm256_and_ps(
                            _mm256_cmp_ps(v, v, _CMP_UNORD_Q),
                            _mm256_cmp_ps(m, m, _CMP_ORD_Q));
                        m = _mm256_blendv_ps(t, v, cond);
                    }
                } else {
                    for (int s = 0; s < 3; s++) {
                        __m256 v = wv[s];
                        __m256 gt = _mm256_cmp_ps(m, v, _CMP_GT_OQ);
                        __m256 t = _mm256_blendv_ps(v, m, gt);
                        __m256 nn = _mm256_cmp_ps(m, m, _CMP_UNORD_Q);
                        m = _mm256_blendv_ps(t, m, nn);
                    }
                }
                if (nl == 8)
                    _mm256_storeu_ps(op + oy * ow + ox, m);
                else
                    _mm256_maskstore_ps(
                        op + oy * ow + ox,
                        _mm256_loadu_si256((const __m256i *)mtab[nl]), m);
            }
        }
    }
}
#endif /* HAVE_X86 */

API void maxpool_nchw(const float *x, float *out,
                      long n, long c, long h, long w,
                      long k, long stride, long oh, long ow, int tie_first)
{
#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    if (k == 2 && stride == 2 && __builtin_cpu_supports("avx2")) {
        maxpool_k2s2_avx2(x, out, n, c, h, w, oh, ow, tie_first);
        return;
    }
#endif
    /* Constant-k clones unroll the window walk (and fold away the
       skip-first-element branch). */
    switch (k) {
    case 2: maxpool_impl(x, out, n, c, h, w, 2, stride, oh, ow, tie_first); break;
    case 3: maxpool_impl(x, out, n, c, h, w, 3, stride, oh, ow, tie_first); break;
    default: maxpool_impl(x, out, n, c, h, w, k, stride, oh, ow, tie_first); break;
    }
}

/* Interpreter batch-norm folded to affine: out = x*scale[c] + shift[c]
   with exactly two float32 roundings per element. */
API void affine_ch(const float *x, float *out, const float *scale,
                   const float *shift, long n, long c, long hw)
{
    for (long i = 0; i < n; i++) {
        for (long ci = 0; ci < c; ci++) {
            const float *xi = x + (i * c + ci) * hw;
            float *oi = out + (i * c + ci) * hw;
            float s = scale[ci], sh = shift[ci];
            for (long j = 0; j < hw; j++) {
                float t = xi[j] * s;
                oi[j] = t + sh;
            }
        }
    }
}

/* Framework eval batch-norm: gamma*((x - mean) * inv_std) + beta with
   the same four float32 roundings as nn.functional.batch_norm. */
API void bn_eval_ch(const float *x, float *out, const float *gamma,
                    const float *beta, const float *mean,
                    const float *inv_std, long n, long c, long hw)
{
    for (long i = 0; i < n; i++) {
        for (long ci = 0; ci < c; ci++) {
            const float *xi = x + (i * c + ci) * hw;
            float *oi = out + (i * c + ci) * hw;
            float mu = mean[ci], inv = inv_std[ci];
            float g = gamma[ci], b = beta[ci];
            for (long j = 0; j < hw; j++) {
                float t1 = xi[j] - mu;
                float t2 = t1 * inv;
                float t3 = g * t2;
                oi[j] = t3 + b;
            }
        }
    }
}

/* Standalone relu pass (unfused); modes as in conv_post. */
API void relu_inplace(float *x, long size, int mode)
{
    if (mode == 1) {
        for (long j = 0; j < size; j++) x[j] = relu_max0(x[j]);
    } else {
        for (long j = 0; j < size; j++) x[j] = relu_mask(x[j]);
    }
}

/* NumPy's pairwise float32 sum for a contiguous axis of length <= 128:
   eight independent scalar accumulators seeded from the first block,
   combined as ((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7)), sequential tail.
   Used to fold the kfac |window| mean into the gather below; every plan
   is probe-verified against the interpreter, so if a NumPy upgrade ever
   changes this reduction the plan compiler falls back to streaming the
   |value| rows through np.mean instead (see plan.py). */
static inline float pairwise_mean_small(const float *a, long n)
{
    float res;
    if (n < 8) {
        res = 0.0f;
        for (long i = 0; i < n; i++) res += a[i];
    } else {
        float r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        float r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        long i = 8;
        for (; i + 8 <= n; i += 8) {
            r0 += a[i];     r1 += a[i + 1];
            r2 += a[i + 2]; r3 += a[i + 3];
            r4 += a[i + 4]; r5 += a[i + 5];
            r6 += a[i + 6]; r7 += a[i + 7];
        }
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) res += a[i];
    }
    return res / (float)n;
}

/* Fused window gather for binary convs: writes |value| rows (for the
   NumPy kfac mean, bitwise-identical to np.abs) and packs the sign bit
   (v >= 0, matching the interpreter's cols >= 0; padded zeros pack as 1)
   into zeroed u64 words.  When maskw is given (padding present), the
   per-row validity mask is pre-applied to the activation words, so the
   popcount loop can use premasked weights: (a&m)^(b&m) == (a^b)&m.

   abscols may be NULL when kfac is given and row_len <= 128: the |v|
   row then lives in a stack buffer and the per-row mean is computed
   in-place, eliminating the abscols memory traffic entirely. */
static inline void binconv_prepare_impl(const float *x, float *abscols,
                                        float *kfac,
                                        uint64_t *words, const uint64_t *maskw,
                                        long n, long c, long h, long w,
                                        long k, long stride, long pad,
                                        long oh, long ow, long W)
{
    long row_len = c * k * k;
    long rows = oh * ow;
    float stackrow[128];
    for (long i = 0; i < n; i++) {
        const float *xi = x + i * c * h * w;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox++) {
                long r = i * rows + oy * ow + ox;
                float *arow = abscols ? abscols + r * row_len : stackrow;
                uint64_t *wrow = words + r * W;
                long ix0 = ox * stride - pad;
                long kj_lo = ix0 < 0 ? -ix0 : 0;
                long kj_hi = w - ix0 < k ? w - ix0 : k;
                if (kj_hi < kj_lo) kj_hi = kj_lo;
                long j = 0;
                /* Bits accumulate in a register word and flush once per
                   64 positions; j is strictly increasing, so every word
                   0..W-1 is assigned exactly once (no pre-zero, no RMW
                   store-to-load chain). */
                uint64_t acc = 0;
                long cw = 0;
#define PUT_BIT(on) do { \
        long wi_ = j >> 6; \
        if (wi_ != cw) { wrow[cw] = acc; acc = 0; cw = wi_; } \
        acc |= bitmask(j) & (uint64_t)(on); } while (0)
                for (long ci = 0; ci < c; ci++) {
                    const float *xc = xi + ci * h * w;
                    for (long ki = 0; ki < k; ki++) {
                        long iy = oy * stride + ki - pad;
                        if (iy < 0 || iy >= h) {
                            /* zero padding: |0| = 0, sign bit 0>=0 set */
                            for (long kj = 0; kj < k; kj++, j++) {
                                arow[j] = 0.0f;
                                PUT_BIT(~(uint64_t)0);
                            }
                            continue;
                        }
                        const float *src = xc + iy * w + ix0;
                        if (kj_lo == 0 && kj_hi == k) {
                            for (long kj = 0; kj < k; kj++, j++) {
                                float v = src[kj];
                                arow[j] = fabsf(v);
                                PUT_BIT((uint64_t)0 - (uint64_t)(v >= 0.0f));
                            }
                            continue;
                        }
                        for (long kj = 0; kj < kj_lo; kj++, j++) {
                            arow[j] = 0.0f;
                            PUT_BIT(~(uint64_t)0);
                        }
                        for (long kj = kj_lo; kj < kj_hi; kj++, j++) {
                            float v = src[kj];
                            arow[j] = fabsf(v);
                            PUT_BIT((uint64_t)0 - (uint64_t)(v >= 0.0f));
                        }
                        for (long kj = kj_hi; kj < k; kj++, j++) {
                            arow[j] = 0.0f;
                            PUT_BIT(~(uint64_t)0);
                        }
                    }
                }
#undef PUT_BIT
                wrow[cw] = acc;
                if (maskw) {
                    const uint64_t *mk = maskw + (oy * ow + ox) * W;
                    for (long wi = 0; wi < W; wi++) wrow[wi] &= mk[wi];
                }
                if (kfac) kfac[r] = pairwise_mean_small(arow, row_len);
            }
        }
    }
}

#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
/* ox-vectorized prepare for the pre-padded stride-1 fused-mean case:
   eight output windows per iteration.  Window values are staged into a
   [row_len][8] buffer; movemask of the lanewise v >= 0 compare yields
   one sign bit per *row*, and an 8x8 bit-matrix transpose (with bytes
   assembled MSB-first) emits each row's packed byte directly in
   np.packbits order.  The kfac mean replays pairwise_mean_small's
   8-accumulator scheme lanewise — IEEE lanewise add/div make every
   lane bit-identical to the scalar reduction. */
__attribute__((target("avx2"))) static
void binconv_prepare_avx2(const float *x, float *kfac,
                          uint64_t *words, const uint64_t *maskw,
                          long n, long c, long h, long w,
                          long k, long oh, long ow, long W)
{
    long row_len = c * k * k;
    long rows = oh * ow;
    long nb = row_len >= 8 ? ((row_len - 8) >> 3) + 1 : 0;
    __m256 zero = _mm256_setzero_ps();
    __m256 absm = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 divn = _mm256_set1_ps((float)row_len);
    float vbuf[128 * 8];
    float tmp8[8];
    for (long i = 0; i < n; i++) {
        const float *base = x + i * c * h * w;
        for (long oy = 0; oy < oh; oy++) {
            for (long ox = 0; ox < ow; ox += 8) {
                long nl = ow - ox < 8 ? ow - ox : 8;
                long j = 0;
                for (long ci = 0; ci < c; ci++) {
                    const float *xc = base + ci * h * w;
                    for (long ki = 0; ki < k; ki++) {
                        const float *src = xc + (oy + ki) * w + ox;
                        if (nl == 8) {
                            for (long kj = 0; kj < k; kj++, j++)
                                _mm256_storeu_ps(vbuf + j * 8,
                                                 _mm256_loadu_ps(src + kj));
                        } else {
                            for (long kj = 0; kj < k; kj++, j++)
                                for (long l = 0; l < 8; l++)
                                    vbuf[j * 8 + l] =
                                        l < nl ? src[kj + l] : 0.0f;
                        }
                    }
                }
                /* packed sign bits, eight rows per transpose */
                uint64_t wl[8][2] = {{0}};
                for (long j0 = 0; j0 < row_len; j0 += 8) {
                    long tmax = row_len - j0 < 8 ? row_len - j0 : 8;
                    uint64_t B = 0;
                    for (long t = 0; t < tmax; t++) {
                        int msk = _mm256_movemask_ps(_mm256_cmp_ps(
                            _mm256_loadu_ps(vbuf + (j0 + t) * 8),
                            zero, _CMP_GE_OQ));
                        B |= (uint64_t)(uint8_t)msk << (8 * (7 - t));
                    }
                    uint64_t T = transpose8(B);
                    long wi = j0 >> 6;
                    long sh = 8 * ((j0 >> 3) & 7);
                    for (long l = 0; l < 8; l++)
                        wl[l][wi] |= ((T >> (8 * l)) & 0xFF) << sh;
                }
                /* numpy pairwise |v| mean, lanewise */
                __m256 a0 = zero, a1 = zero, a2 = zero, a3 = zero;
                __m256 a4 = zero, a5 = zero, a6 = zero, a7 = zero;
                for (long b = 0; b < nb; b++) {
                    const float *vb = vbuf + b * 64;
                    a0 = _mm256_add_ps(a0, _mm256_and_ps(absm, _mm256_loadu_ps(vb)));
                    a1 = _mm256_add_ps(a1, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 8)));
                    a2 = _mm256_add_ps(a2, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 16)));
                    a3 = _mm256_add_ps(a3, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 24)));
                    a4 = _mm256_add_ps(a4, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 32)));
                    a5 = _mm256_add_ps(a5, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 40)));
                    a6 = _mm256_add_ps(a6, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 48)));
                    a7 = _mm256_add_ps(a7, _mm256_and_ps(absm, _mm256_loadu_ps(vb + 56)));
                }
                __m256 res = _mm256_add_ps(
                    _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)),
                    _mm256_add_ps(_mm256_add_ps(a4, a5), _mm256_add_ps(a6, a7)));
                for (long jt = nb * 8; jt < row_len; jt++)
                    res = _mm256_add_ps(res, _mm256_and_ps(
                        absm, _mm256_loadu_ps(vbuf + jt * 8)));
                res = _mm256_div_ps(res, divn);
                long rbase = i * rows + oy * ow + ox;
                if (nl == 8) {
                    _mm256_storeu_ps(kfac + rbase, res);
                } else {
                    _mm256_storeu_ps(tmp8, res);
                    for (long l = 0; l < nl; l++) kfac[rbase + l] = tmp8[l];
                }
                for (long l = 0; l < nl; l++) {
                    uint64_t *wr = words + (rbase + l) * W;
                    if (maskw) {
                        const uint64_t *mk = maskw + (oy * ow + ox + l) * W;
                        for (long wi = 0; wi < W; wi++)
                            wr[wi] = wl[l][wi] & mk[wi];
                    } else {
                        for (long wi = 0; wi < W; wi++) wr[wi] = wl[l][wi];
                    }
                }
            }
        }
    }
}
#endif /* HAVE_X86 */

API void binconv_prepare(const float *x, float *abscols, float *kfac,
                         uint64_t *words, const uint64_t *maskw,
                         long n, long c, long h, long w,
                         long k, long stride, long pad,
                         long oh, long ow, long W)
{
#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    if (stride == 1 && pad == 0 && kfac && !abscols &&
        c * k * k <= 128 && ow >= 8 && __builtin_cpu_supports("avx2")) {
        binconv_prepare_avx2(x, kfac, words, maskw, n, c, h, w, k, oh, ow, W);
        return;
    }
#endif
    switch (k) {
    case 3:
        binconv_prepare_impl(x, abscols, kfac, words, maskw,
                             n, c, h, w, 3, stride, pad, oh, ow, W);
        break;
    case 5:
        binconv_prepare_impl(x, abscols, kfac, words, maskw,
                             n, c, h, w, 5, stride, pad, oh, ow, W);
        break;
    default:
        binconv_prepare_impl(x, abscols, kfac, words, maskw,
                             n, c, h, w, k, stride, pad, oh, ow, W);
        break;
    }
}

/* Row-wise sign packing for binary linear layers (x >= 0 per element).
   Same register-accumulated word trick as binconv_prepare. */
static void pack_rows_scalar(const float *x, uint64_t *words,
                             long m, long f, long W)
{
    for (long i = 0; i < m; i++) {
        const float *xi = x + i * f;
        uint64_t *wrow = words + i * W;
        uint64_t acc = 0;
        long cw = 0;
        for (long j = 0; j < f; j++) {
            long wi = j >> 6;
            if (wi != cw) { wrow[cw] = acc; acc = 0; cw = wi; }
            acc |= bitmask(j) & ((uint64_t)0 - (uint64_t)(xi[j] >= 0.0f));
        }
        wrow[cw] = acc;
    }
}

#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
/* Bit-reversal table: movemask emits lane 0 in bit 0, packbits wants
   element 0 in bit 7 of its byte. */
#define RV2(n) n, (n) + 2 * 64, (n) + 1 * 64, (n) + 3 * 64
#define RV4(n) RV2(n), RV2((n) + 2 * 16), RV2((n) + 1 * 16), RV2((n) + 3 * 16)
#define RV6(n) RV4(n), RV4((n) + 2 * 4), RV4((n) + 1 * 4), RV4((n) + 3 * 4)
static const uint8_t bitrev8[256] = { RV6(0), RV6(2), RV6(1), RV6(3) };
#undef RV6
#undef RV4
#undef RV2

/* Eight signs per compare: movemask the lanewise x >= 0, bit-reverse
   the byte into packbits order, accumulate eight bytes per u64 store.
   Trailing bits past f stay zero, as in the scalar register path. */
__attribute__((target("avx2"))) static
void pack_rows_avx2(const float *x, uint64_t *words, long m, long f, long W)
{
    __m256 zero = _mm256_setzero_ps();
    long f8 = f & ~7L;
    for (long i = 0; i < m; i++) {
        const float *xi = x + i * f;
        uint64_t *wrow = words + i * W;
        uint64_t acc = 0;
        long j = 0;
        for (; j < f8; j += 8) {
            int msk = _mm256_movemask_ps(
                _mm256_cmp_ps(_mm256_loadu_ps(xi + j), zero, _CMP_GE_OQ));
            acc |= (uint64_t)bitrev8[(uint8_t)msk] << (8 * ((j >> 3) & 7));
            if ((j & 63) == 56) { wrow[j >> 6] = acc; acc = 0; }
        }
        for (; j < f; j++)
            acc |= bitmask(j) & ((uint64_t)0 - (uint64_t)(xi[j] >= 0.0f));
        if (f & 63 || f == 0) wrow[f >> 6] = acc;
    }
}
#endif /* HAVE_X86 */

API void pack_rows(const float *x, uint64_t *words, long m, long f, long W)
{
#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    if (f >= 8 && __builtin_cpu_supports("avx2")) {
        pack_rows_avx2(x, words, m, f, W);
        return;
    }
#endif
    pack_rows_scalar(x, words, m, f, W);
}

/* Fused XNOR dot + scale chain.  For activation row p = i*rows + r and
   output channel o: mismatches = popcount(a ^ w); then exactly the
   interpreter's float32 chain  d = float(valid - 2*mismatches);
   t = d*alpha[o]; t = t*kfac[p]; t += bias[o].  Channel-outer so every
   NCHW write (out[i][o][r]; rows == 1 degenerates to NC linear layout)
   is contiguous; activation words restream per channel from L2.

   With padding, both planes arrive premasked: binconv_prepare applies
   the validity mask to the activation words, and the caller passes
   vwm — per-row premasked weight words, layout (oc, rows, W) — plus
   the per-row valid counts; (a&m)^(b&m) == (a^b)&m makes this exact.
   Without padding, vw is the plain (oc, W) weight plane and every row
   has fallback_valid usable bits. */
static void popdot_impl(const uint64_t *va, const uint64_t *vw,
                        const uint64_t *vwm, const int32_t *valid,
                        const float *alpha, const float *kfac,
                        const float *bias, float *out,
                        long n, long rows, long oc, long W,
                        long fallback_valid)
{
    for (long o = 0; o < oc; o++) {
        const uint64_t *b_plain = vw ? vw + o * W : 0;
        const uint64_t *b_rows = vwm ? vwm + o * rows * W : 0;
        float al = alpha[o];
        float bi = bias ? bias[o] : 0.0f;
        for (long i = 0; i < n; i++) {
            const uint64_t *ai = va + i * rows * W;
            const float *kfi = kfac + i * rows;
            float *oo = out + (i * oc + o) * rows;
            for (long r = 0; r < rows; r++) {
                const uint64_t *a = ai + r * W;
                const uint64_t *b = vwm ? b_rows + r * W : b_plain;
                uint64_t mism = 0;
                for (long wi = 0; wi < W; wi++)
                    mism += (uint64_t)__builtin_popcountll(a[wi] ^ b[wi]);
                long vld = valid ? (long)valid[r] : fallback_valid;
                float d = (float)(vld - 2 * (long long)mism);
                float t = d * al;
                t = t * kfi[r];
                if (bias) t = t + bi;
                oo[r] = t;
            }
        }
    }
}

#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
#define AVX2_FN __attribute__((target("avx2"), always_inline)) static inline
#define AVX2_KERNEL __attribute__((target("avx2"))) static

/* Byte-wise nibble-LUT popcount; _mm256_sad_epu8 then sums the 8 bytes
   of each 64-bit lane, so each u64 lane of the result holds the exact
   popcount of the corresponding input word. */
AVX2_FN __m256i popcnt256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4,
        0,1,1,2,1,2,2,3,1,2,2,3,2,3,3,4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, low);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/* Shared epilogue: m holds the 8 mismatch counts as epi32; run the exact
   interpreter float chain lanewise (lane ops are IEEE-identical to the
   scalar chain, and (float)(int32) conversion is exact for these small
   counts, matching the scalar (float)(long long) cast). */
AVX2_FN void popdot_store8(__m256i m, const int32_t *valid, long r,
                           __m256i vfb, __m256 al8, __m256 bi8,
                           int has_bias, const float *kfi, float *oo)
{
    __m256i vld = valid
        ? _mm256_loadu_si256((const __m256i *)(valid + r))
        : vfb;
    __m256i dif = _mm256_sub_epi32(vld, _mm256_slli_epi32(m, 1));
    __m256 t = _mm256_mul_ps(_mm256_cvtepi32_ps(dif), al8);
    t = _mm256_mul_ps(t, _mm256_loadu_ps(kfi + r));
    if (has_bias) t = _mm256_add_ps(t, bi8);
    _mm256_storeu_ps(oo + r, t);
}

/* W == 2: 8 rows per iteration.  Activation rows are 16 bytes apart, so
   4 rows span one 256-bit load ([rA.w0 rA.w1 rB.w0 rB.w1]); per-row
   mismatch = sum of the two u64 popcounts, gathered across the four
   partial vectors into one epi32 vector of 8 row counts. */
AVX2_KERNEL void popdot_w2_avx2(const uint64_t *va, const uint64_t *vw,
                                const uint64_t *vwm, const int32_t *valid,
                                const float *alpha, const float *kfac,
                                const float *bias, float *out,
                                long n, long rows, long oc,
                                long fallback_valid)
{
    const __m256i idx0 = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
    const __m256i idx1 = _mm256_setr_epi32(0, 0, 0, 4, 0, 0, 0, 0);
    const __m256i idx2 = _mm256_setr_epi32(0, 0, 0, 0, 0, 4, 0, 0);
    const __m256i idx3 = _mm256_setr_epi32(0, 0, 0, 0, 0, 0, 0, 4);
    __m256i vfb = _mm256_set1_epi32((int)fallback_valid);
    int has_bias = bias != 0;
    for (long o = 0; o < oc; o++) {
        const uint64_t *b_plain = vw ? vw + o * 2 : 0;
        const uint64_t *b_rows = vwm ? vwm + o * rows * 2 : 0;
        __m256i bb = vwm ? _mm256_setzero_si256()
            : _mm256_broadcastsi128_si256(
                  _mm_loadu_si128((const __m128i *)b_plain));
        __m256 al8 = _mm256_set1_ps(alpha[o]);
        __m256 bi8 = _mm256_set1_ps(has_bias ? bias[o] : 0.0f);
        for (long i = 0; i < n; i++) {
            const uint64_t *ai = va + i * rows * 2;
            const float *kfi = kfac + i * rows;
            float *oo = out + (i * oc + o) * rows;
            long r = 0;
            for (; r + 8 <= rows; r += 8) {
                __m256i s[4];
                for (int q = 0; q < 4; q++) {
                    __m256i av = _mm256_loadu_si256(
                        (const __m256i *)(ai + (r + 2 * q) * 2));
                    __m256i bv = vwm
                        ? _mm256_loadu_si256(
                              (const __m256i *)(b_rows + (r + 2 * q) * 2))
                        : bb;
                    __m256i ct = popcnt256(_mm256_xor_si256(av, bv));
                    /* u64 lanes [p0 p1 p2 p3] -> row sums p0+p1, p2+p3
                       at dword lanes 0 and 4. */
                    s[q] = _mm256_add_epi64(
                        ct, _mm256_shuffle_epi32(ct, 0x4E));
                }
                __m256i m = _mm256_blend_epi32(
                    _mm256_blend_epi32(
                        _mm256_permutevar8x32_epi32(s[0], idx0),
                        _mm256_permutevar8x32_epi32(s[1], idx1), 0x0C),
                    _mm256_blend_epi32(
                        _mm256_permutevar8x32_epi32(s[2], idx2),
                        _mm256_permutevar8x32_epi32(s[3], idx3), 0xC0),
                    0xF0);
                popdot_store8(m, valid, r, vfb, al8, bi8,
                              has_bias, kfi, oo);
            }
            for (; r < rows; r++) {
                const uint64_t *a = ai + r * 2;
                const uint64_t *b = vwm ? b_rows + r * 2 : b_plain;
                uint64_t mism =
                    (uint64_t)__builtin_popcountll(a[0] ^ b[0]) +
                    (uint64_t)__builtin_popcountll(a[1] ^ b[1]);
                long vld = valid ? (long)valid[r] : fallback_valid;
                float d = (float)(vld - 2 * (long long)mism);
                float t = d * al8[0];
                t = t * kfi[r];
                if (has_bias) t = t + bi8[0];
                oo[r] = t;
            }
        }
    }
}

/* W == 1: 8 rows = 8 contiguous u64 words = two 256-bit loads. */
AVX2_KERNEL void popdot_w1_avx2(const uint64_t *va, const uint64_t *vw,
                                const uint64_t *vwm, const int32_t *valid,
                                const float *alpha, const float *kfac,
                                const float *bias, float *out,
                                long n, long rows, long oc,
                                long fallback_valid)
{
    const __m256i idx_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    const __m256i idx_hi = _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6);
    __m256i vfb = _mm256_set1_epi32((int)fallback_valid);
    int has_bias = bias != 0;
    for (long o = 0; o < oc; o++) {
        const uint64_t *b_plain = vw ? vw + o : 0;
        const uint64_t *b_rows = vwm ? vwm + o * rows : 0;
        __m256i bb = vwm ? _mm256_setzero_si256()
                         : _mm256_set1_epi64x((long long)b_plain[0]);
        __m256 al8 = _mm256_set1_ps(alpha[o]);
        __m256 bi8 = _mm256_set1_ps(has_bias ? bias[o] : 0.0f);
        for (long i = 0; i < n; i++) {
            const uint64_t *ai = va + i * rows;
            const float *kfi = kfac + i * rows;
            float *oo = out + (i * oc + o) * rows;
            long r = 0;
            for (; r + 8 <= rows; r += 8) {
                __m256i a0 = _mm256_loadu_si256((const __m256i *)(ai + r));
                __m256i a1 = _mm256_loadu_si256((const __m256i *)(ai + r + 4));
                __m256i b0 = vwm
                    ? _mm256_loadu_si256((const __m256i *)(b_rows + r)) : bb;
                __m256i b1 = vwm
                    ? _mm256_loadu_si256((const __m256i *)(b_rows + r + 4)) : bb;
                __m256i c0 = popcnt256(_mm256_xor_si256(a0, b0));
                __m256i c1 = popcnt256(_mm256_xor_si256(a1, b1));
                __m256i m = _mm256_blend_epi32(
                    _mm256_permutevar8x32_epi32(c0, idx_lo),
                    _mm256_permutevar8x32_epi32(c1, idx_hi), 0xF0);
                popdot_store8(m, valid, r, vfb, al8, bi8,
                              has_bias, kfi, oo);
            }
            for (; r < rows; r++) {
                uint64_t b = vwm ? b_rows[r] : b_plain[0];
                uint64_t mism = (uint64_t)__builtin_popcountll(ai[r] ^ b);
                long vld = valid ? (long)valid[r] : fallback_valid;
                float d = (float)(vld - 2 * (long long)mism);
                float t = d * al8[0];
                t = t * kfi[r];
                if (has_bias) t = t + bi8[0];
                oo[r] = t;
            }
        }
    }
}

/* Generic W >= 3: one row at a time, 256-bit chunks over the word axis
   (maskload covers the W % 4 remainder — masked lanes read as zero and
   0^0 popcounts to 0).  Used by e.g. the 784-bit binary linear rows,
   where the scalar path's software popcount dominates. */
AVX2_KERNEL void popdot_genw_avx2(const uint64_t *va, const uint64_t *vw,
                                  const uint64_t *vwm, const int32_t *valid,
                                  const float *alpha, const float *kfac,
                                  const float *bias, float *out,
                                  long n, long rows, long oc, long W,
                                  long fallback_valid)
{
    static const long long qmtab[4][4] = {
        {0, 0, 0, 0}, {-1, 0, 0, 0}, {-1, -1, 0, 0}, {-1, -1, -1, 0},
    };
    long W4 = W & ~3L;
    __m256i qm = _mm256_loadu_si256((const __m256i *)qmtab[W - W4]);
    int has_bias = bias != 0;
    for (long o = 0; o < oc; o++) {
        const uint64_t *b_plain = vw ? vw + o * W : 0;
        const uint64_t *b_rows = vwm ? vwm + o * rows * W : 0;
        float al = alpha[o];
        float bi = has_bias ? bias[o] : 0.0f;
        for (long i = 0; i < n; i++) {
            const uint64_t *ai = va + i * rows * W;
            const float *kfi = kfac + i * rows;
            float *oo = out + (i * oc + o) * rows;
            for (long r = 0; r < rows; r++) {
                const uint64_t *a = ai + r * W;
                const uint64_t *b = vwm ? b_rows + r * W : b_plain;
                __m256i acc = _mm256_setzero_si256();
                long wi = 0;
                for (; wi < W4; wi += 4)
                    acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(
                        _mm256_loadu_si256((const __m256i *)(a + wi)),
                        _mm256_loadu_si256((const __m256i *)(b + wi)))));
                if (wi < W)
                    acc = _mm256_add_epi64(acc, popcnt256(_mm256_xor_si256(
                        _mm256_maskload_epi64((const long long *)(a + wi), qm),
                        _mm256_maskload_epi64((const long long *)(b + wi), qm))));
                __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                          _mm256_extracti128_si256(acc, 1));
                uint64_t mism = (uint64_t)_mm_cvtsi128_si64(s) +
                                (uint64_t)_mm_extract_epi64(s, 1);
                long vld = valid ? (long)valid[r] : fallback_valid;
                float d = (float)(vld - 2 * (long long)mism);
                float t = d * al;
                t = t * kfi[r];
                if (has_bias) t = t + bi;
                oo[r] = t;
            }
        }
    }
}
#endif /* HAVE_X86 */

API void popdot_scale(const uint64_t *va, const uint64_t *vw,
                      const uint64_t *vwm, const int32_t *valid,
                      const float *alpha, const float *kfac,
                      const float *bias, float *out,
                      long n, long rows, long oc, long W,
                      long fallback_valid)
{
#if defined(HAVE_X86) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) {
        if (W == 2) {
            popdot_w2_avx2(va, vw, vwm, valid, alpha, kfac, bias, out,
                           n, rows, oc, fallback_valid);
            return;
        }
        if (W == 1) {
            popdot_w1_avx2(va, vw, vwm, valid, alpha, kfac, bias, out,
                           n, rows, oc, fallback_valid);
            return;
        }
        popdot_genw_avx2(va, vw, vwm, valid, alpha, kfac, bias, out,
                         n, rows, oc, W, fallback_valid);
        return;
    }
#endif
    /* Constant W lets -O3 fully unroll the popcount loop. */
    if (W == 1)
        popdot_impl(va, vw, vwm, valid, alpha, kfac, bias, out,
                    n, rows, oc, 1, fallback_valid);
    else if (W == 2)
        popdot_impl(va, vw, vwm, valid, alpha, kfac, bias, out,
                    n, rows, oc, 2, fallback_valid);
    else
        popdot_impl(va, vw, vwm, valid, alpha, kfac, bias, out,
                    n, rows, oc, W, fallback_valid);
}
"""

_VOIDP = ctypes.c_void_p
_LONG = ctypes.c_long
_INT = ctypes.c_int

_SIGNATURES = {
    # name -> argtypes (all pointers passed as raw addresses)
    "im2col_f32": [_VOIDP, _VOIDP] + [_LONG] * 9,
    "pad_nchw": [_VOIDP, _VOIDP] + [_LONG] * 5,
    "conv_direct": [_VOIDP] * 5 + [_LONG] * 9 + [_INT],
    "conv_post": [_VOIDP, _VOIDP, _VOIDP, _VOIDP, _LONG, _LONG, _LONG, _INT],
    "maxpool_nchw": [_VOIDP, _VOIDP] + [_LONG] * 8 + [_INT],
    "affine_ch": [_VOIDP, _VOIDP, _VOIDP, _VOIDP, _LONG, _LONG, _LONG],
    "bn_eval_ch": [_VOIDP] * 6 + [_LONG] * 3,
    "relu_inplace": [_VOIDP, _LONG, _INT],
    "binconv_prepare": [_VOIDP, _VOIDP, _VOIDP, _VOIDP, _VOIDP] + [_LONG] * 10,
    "pack_rows": [_VOIDP, _VOIDP, _LONG, _LONG, _LONG],
    "popdot_scale": [_VOIDP] * 8 + [_LONG] * 5,  # n, rows, oc, W, fallback_valid
}

_BACKEND: Optional[ctypes.CDLL] = None
_BACKEND_ERROR: Optional[str] = None
_TRIED = False
#: Serializes first-use backend init: without it two threads racing into
#: ``get_backend`` could both run the compile/load (wasted work, and a
#: torn ``_TRIED``/``_BACKEND_ERROR`` pair on the failure path).
_BACKEND_LOCK = threading.Lock()


def kill_switch_engaged() -> bool:
    """True when ``REPRO_PLAN_NO_CC`` disables the backend."""
    return bool(os.environ.get(KILL_SWITCH))


def _find_compiler() -> Optional[str]:
    for candidate in ("cc", "gcc", "clang"):
        path = which(candidate)
        if path:
            return path
    return None


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = None
    return lib


def _source_digest() -> str:
    payload = (" ".join(_CFLAGS) + "\n" + _C_SOURCE).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _build_library() -> ctypes.CDLL:
    digest = _source_digest()
    so_name = f"plan_kernels_{digest}.so"
    cache_dir = Path(__file__).resolve().parent / "_kernels"
    for directory in (cache_dir, Path(tempfile.gettempdir()) / "repro_plan_kernels"):
        so_path = directory / so_name
        if so_path.exists():
            return _declare(ctypes.CDLL(str(so_path)))
        try:
            directory.mkdir(parents=True, exist_ok=True)
            probe = directory / f".w{os.getpid()}"
            probe.write_text("")
            probe.unlink()
        except OSError:
            continue
        cc = _find_compiler()
        if cc is None:
            raise KernelBackendError("no C compiler (cc/gcc/clang) on PATH")
        src_path = directory / f"plan_kernels_{digest}.c"
        src_path.write_text(_C_SOURCE)
        tmp_so = directory / f"{so_name}.tmp{os.getpid()}"
        cmd = [cc, *_CFLAGS, str(src_path), "-lm", "-o", str(tmp_so)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelBackendError(
                f"kernel compile failed ({' '.join(cmd)}): {proc.stderr.strip()[:400]}"
            )
        os.replace(tmp_so, so_path)
        return _declare(ctypes.CDLL(str(so_path)))
    raise KernelBackendError("no writable directory for the kernel cache")


def get_backend() -> ctypes.CDLL:
    """Return the loaded kernel library, building it on first use.

    Raises :class:`KernelBackendError` when the kill switch is set or the
    build failed; the failure is cached so later calls fail fast.
    Safe for concurrent first-use: the build runs at most once, under
    ``_BACKEND_LOCK`` (double-checked — the hot path reads ``_BACKEND``
    without taking it).
    """
    global _BACKEND, _BACKEND_ERROR, _TRIED
    if kill_switch_engaged():
        raise KernelBackendError(f"{KILL_SWITCH} is set; compiled plans disabled")
    if _BACKEND is not None:
        return _BACKEND
    with _BACKEND_LOCK:
        if _BACKEND is not None:
            return _BACKEND
        if _TRIED and _BACKEND_ERROR is not None:
            raise KernelBackendError(_BACKEND_ERROR)
        _TRIED = True
        try:
            _BACKEND = _build_library()
        except KernelBackendError as exc:
            _BACKEND_ERROR = str(exc)
            raise
        except Exception as exc:  # defensive: any loader surprise
            _BACKEND_ERROR = f"{type(exc).__name__}: {exc}"
            raise KernelBackendError(_BACKEND_ERROR) from exc
        return _BACKEND


def backend_available() -> bool:
    """True when the C backend can be (or has been) loaded."""
    try:
        get_backend()
    except KernelBackendError:
        return False
    return True


def backend_error() -> Optional[str]:
    """The cached build failure message, if any."""
    if kill_switch_engaged():
        return f"{KILL_SWITCH} is set"
    return _BACKEND_ERROR
