"""Joint training of the composite network (paper Algorithm 1).

The procedure per minibatch:

1. *Main branch pass* — standard forward/backward through conv1 + trunk,
   update with η_main (Algorithm 1 lines 1–5).
2. *Binary branch pass* — forward with binarized weights & inputs
   (Eq. 4: ``(sign(I) ⊛ sign(W)) ⊙ K·α``), STE backward (Eq. 5–6), update
   the *full-precision master weights* with η_binary (lines 6–14), then
   clamp them to [−1, 1] so they stay inside the STE window.

The joint loss (Eq. 1) is the sum of both branch losses; since the two
branches share conv1, the shared layer receives gradients from both
objectives, which is what lets the edge-side trunk "supply the accuracy
shortage" of the browser-side branch at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..data.dataset import ArrayDataset, DataLoader
from ..nn import functional as F
from ..nn.autograd import Tensor, no_grad
from ..nn.binary import clamp_master_weights
from ..optim import Adam, Optimizer
from .composite import CompositeNetwork


@dataclass
class EpochStats:
    """Per-epoch training record (the series plotted in Figure 5)."""

    epoch: int
    loss_total: float
    loss_main: float
    loss_binary: float
    train_accuracy_main: float
    train_accuracy_binary: float
    test_accuracy_main: Optional[float] = None
    test_accuracy_binary: Optional[float] = None


@dataclass
class TrainingHistory:
    """Full training trace of a joint run."""

    epochs: list[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final(self) -> EpochStats:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1]

    def series(self, attribute: str) -> list[float]:
        """Extract one metric across epochs (for the Figure 5 curves)."""
        return [getattr(e, attribute) for e in self.epochs]


@dataclass(frozen=True)
class JointTrainingConfig:
    """Hyperparameters of Algorithm 1."""

    epochs: int = 8
    batch_size: int = 64
    lr_main: float = 1e-3
    lr_binary: float = 2e-3
    weight_decay: float = 0.0
    main_loss_weight: float = 1.0
    binary_loss_weight: float = 1.0
    clamp_binary_weights: bool = True
    seed: int = 0


class JointTrainer:
    """Runs Algorithm 1 on a :class:`CompositeNetwork`."""

    def __init__(
        self,
        model: CompositeNetwork,
        config: JointTrainingConfig = JointTrainingConfig(),
    ) -> None:
        self.model = model
        self.config = config
        # Separate optimizers realize the separate learning-rate tracks
        # η_main / η_binary of Algorithm 1.  The shared conv1 belongs to
        # the main group; the binary pass still sends it gradient through
        # the joint backward.
        self.main_optimizer: Optimizer = Adam(
            model.main_parameters(), lr=config.lr_main, weight_decay=config.weight_decay
        )
        self.binary_optimizer: Optimizer = Adam(
            model.binary_parameters(), lr=config.lr_binary
        )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # Single step
    # ------------------------------------------------------------------
    def train_step(self, images: np.ndarray, labels: np.ndarray) -> tuple[float, float, float]:
        """One joint minibatch update; returns (total, main, binary) losses."""
        model = self.model
        model.train()
        x = Tensor(images)

        main_logits, binary_logits = model(x)
        loss_main = F.cross_entropy(main_logits, labels)
        loss_binary = F.cross_entropy(binary_logits, labels)
        total = (
            loss_main * self.config.main_loss_weight
            + loss_binary * self.config.binary_loss_weight
        )

        model.zero_grad()
        total.backward()
        self.main_optimizer.step()
        self.binary_optimizer.step()
        if self.config.clamp_binary_weights:
            clamp_master_weights(model.binary_branch)
        return float(total.item()), float(loss_main.item()), float(loss_binary.item())

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------
    def fit(
        self,
        train: ArrayDataset,
        test: Optional[ArrayDataset] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        loader = DataLoader(
            train,
            batch_size=self.config.batch_size,
            shuffle=True,
            seed=self.config.seed,
        )
        for epoch in range(self.config.epochs):
            totals = np.zeros(3)
            batches = 0
            correct_main = 0
            correct_binary = 0
            seen = 0
            for images, labels in loader:
                t, m, b = self.train_step(images, labels)
                totals += (t, m, b)
                batches += 1
                # Reuse the just-computed logits? They are gone; cheap
                # re-eval on the batch would double compute, so track
                # training accuracy from a fresh eval pass per epoch below
                # only for small sets; here approximate from the last step.
                seen += len(labels)
            avg = totals / max(batches, 1)

            train_acc_main, train_acc_binary = self.evaluate(train)
            stats = EpochStats(
                epoch=epoch,
                loss_total=float(avg[0]),
                loss_main=float(avg[1]),
                loss_binary=float(avg[2]),
                train_accuracy_main=train_acc_main,
                train_accuracy_binary=train_acc_binary,
            )
            if test is not None:
                stats.test_accuracy_main, stats.test_accuracy_binary = self.evaluate(test)
            self.history.append(stats)
            if verbose:
                print(
                    f"epoch {epoch}: loss={stats.loss_total:.4f} "
                    f"main_acc={train_acc_main:.3f} binary_acc={train_acc_binary:.3f}"
                )
        return self.history

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, dataset: ArrayDataset, batch_size: int = 256
    ) -> tuple[float, float]:
        """Return (main_accuracy, binary_accuracy) on a dataset."""
        main_logits, binary_logits = self.predict_logits(dataset, batch_size)
        return (
            F.accuracy(main_logits, dataset.labels),
            F.accuracy(binary_logits, dataset.labels),
        )

    def predict_logits(
        self, dataset: ArrayDataset, batch_size: int = 256
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch inference of both branches with gradients off."""
        model = self.model
        model.eval()
        main_out: list[np.ndarray] = []
        binary_out: list[np.ndarray] = []
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                x = Tensor(dataset.images[start : start + batch_size])
                main_logits, binary_logits = model(x)
                main_out.append(main_logits.data)
                binary_out.append(binary_logits.data)
        return np.concatenate(main_out), np.concatenate(binary_out)
