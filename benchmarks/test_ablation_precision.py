"""Weight-precision spectrum ablation: 1-bit XNOR vs k-bit vs fp32.

The paper jumps from fp32 to 1-bit; this sweep fills in the middle.
Each precision gets the same branch topology, joint-trained on the same
data, and reports (accuracy, branch bytes) — showing where the XNOR
point sits on the size/accuracy frontier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BinaryBranchConfig,
    CompositeNetwork,
    JointTrainer,
    JointTrainingConfig,
    build_binary_branch,
    build_quantized_branch,
)
from repro.data import make_dataset
from repro.experiments.reporting import render_table
from repro.models import build_model
from repro.profiling import NetworkProfile

pytestmark = pytest.mark.slow  # trains systems from scratch


def _train_precision_spectrum():
    train, test = make_dataset("mnist", 800, 250, seed=6)
    config = BinaryBranchConfig(channels=16, hidden=64)
    results = {}

    for label, bits in (("1-bit xnor", None), ("2-bit", 2), ("4-bit", 4), ("8-bit", 8)):
        rng = np.random.default_rng(6)
        base = build_model("lenet", 1, train.num_classes, 28, rng=rng)
        composite = CompositeNetwork(base, config, rng=rng)
        stem_shape = composite.stem_output_shape
        if bits is not None:
            # Swap in the k-bit branch (same topology, different precision).
            composite.binary_branch = build_quantized_branch(
                stem_shape, train.num_classes, bits, config, rng=np.random.default_rng(6)
            )
        trainer = JointTrainer(
            composite, JointTrainingConfig(epochs=4, lr_main=2e-3, seed=6)
        )
        trainer.fit(train)
        _, branch_acc = trainer.evaluate(test)
        branch_bytes = NetworkProfile.of(
            composite.binary_branch, stem_shape
        ).total_param_bytes
        results[label] = {"accuracy": branch_acc, "bytes": branch_bytes}
    return results


def test_precision_spectrum(benchmark, announce):
    results = benchmark.pedantic(_train_precision_spectrum, rounds=1, iterations=1)
    announce(
        render_table(
            ["precision", "branch acc", "branch bytes"],
            [
                [label, f"{r['accuracy']:.3f}", f"{r['bytes']:,}"]
                for label, r in results.items()
            ],
            title="weight-precision spectrum (lenet/mnist side branch)",
        )
    )

    # Size ordering is structural: 1-bit < 2-bit < 4-bit < 8-bit.
    sizes = [results[k]["bytes"] for k in ("1-bit xnor", "2-bit", "4-bit", "8-bit")]
    assert sizes == sorted(sizes)
    # Every precision must learn the task (the branch is not crippled by
    # quantization on this dataset)...
    for label, r in results.items():
        assert r["accuracy"] > 0.7, label
    # ...and the XNOR point must be competitive with 8-bit within a few
    # points while being ~8x smaller — the paper's design bet.
    assert results["1-bit xnor"]["accuracy"] >= results["8-bit"]["accuracy"] - 0.08
    assert results["8-bit"]["bytes"] > 3 * results["1-bit xnor"]["bytes"]


def test_benchmark_quantization_kernel(benchmark):
    from repro.nn import quantize_weights

    rng = np.random.default_rng(0)
    w = rng.standard_normal((256, 1024)).astype(np.float32)
    benchmark(lambda: quantize_weights(w, 4))
