"""Trace-smoke: a traced multi-session run must export a valid timeline.

``make trace-smoke`` trains a tiny LeNet system, drives a 2-user
scheduler round with tracing enabled, exports the Chrome trace_event
JSON, and asserts the invariants the observability subsystem promises:

* tracing changes no predictions (bit-identical to an untraced run),
* every chunk gets a trace id and a root ``chunk`` span,
* miss-path chunks produce ``sched.queue_wait`` + ``trunk.batch``
  spans on the edge track, correlated by trace id,
* the exported document parses and every event sits on a known track.

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/trace_smoke.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path


def main() -> None:
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset
    from repro.observability import Tracer, write_chrome_trace
    from repro.runtime import LCRSDeployment, SessionConfig
    from repro.runtime.network import four_g
    from repro.runtime.scheduler import (
        EdgeScheduler,
        SchedulerConfig,
        run_concurrent_sessions,
    )

    print("== train a tiny system ==")
    train, test = make_dataset("mnist", 400, 120, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(epochs=3, batch_size=64, seed=0),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)

    images = test.images[:16]
    # Tighten tau so the miss path (the traced edge exchange) is exercised.
    config = SessionConfig(batch_size=4, threshold=0.05)

    def run(recorder=None):
        deployments = [
            LCRSDeployment(system, four_g(seed=10_000 + i)) for i in range(2)
        ]
        scheduler = EdgeScheduler.for_system(
            system, config=SchedulerConfig(window_ms=4.0, max_batch_size=32)
        )
        return run_concurrent_sessions(
            deployments, [images, images], scheduler, config=config,
            recorder=recorder,
        )

    print("== untraced vs traced run ==")
    baseline = run()
    tracer = Tracer()
    traced = run(recorder=tracer)
    for base, trac in zip(baseline, traced):
        assert (base.predictions == trac.predictions).all(), "tracing changed predictions"
        assert [o.exited_locally for o in base.outcomes] == [
            o.exited_locally for o in trac.outcomes
        ], "tracing changed exit decisions"
    print("predictions and exit decisions bit-identical with tracing on")

    spans = tracer.spans()
    roots = [s for s in spans if s.name == "chunk"]
    edge = [s for s in spans if s.track == "edge"]
    assert roots, "no chunk root spans recorded"
    assert all(r.trace_id for r in roots), "chunk span without a trace id"
    edge_traces = {s.name for s in edge}
    assert "trunk.batch" in edge_traces and "sched.queue_wait" in edge_traces, (
        f"edge track incomplete: {sorted(edge_traces)}"
    )

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "trace.json"
        write_chrome_trace(tracer, out)
        doc = json.loads(out.read_text())
        tracks = set(doc["otherData"]["tracks"])
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] >= 0, f"negative duration on {event['name']}"
        print(
            f"exported {len(doc['traceEvents'])} events across "
            f"{len(tracks)} tracks: {sorted(tracks)}"
        )
    summary = tracer.summary()
    print(f"traces={summary.traces} spans={summary.spans}")
    print("trace-smoke OK")


if __name__ == "__main__":
    main()
