#!/usr/bin/env python
"""Latency & communication study: Tables II/III, Figures 6/7, ablations.

Everything here is training-free (profiles and plans depend only on the
architectures), so the full study runs in seconds.  Exit rates default
to the paper's Table I values; pass ``--exit-rate`` to sweep your own.

Run:  python examples/latency_study.py
      python examples/latency_study.py --samples 200 --exit-rate 0.9
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    run_branch_count,
    run_branch_location,
    run_device_sensitivity,
    run_figure6,
    run_figure7,
    run_latency_comparison,
)
from repro.models import MODEL_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=100)
    parser.add_argument(
        "--exit-rate",
        type=float,
        default=None,
        help="override the per-network exit rates with one value",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    exit_rates = (
        {net: args.exit_rate for net in MODEL_NAMES} if args.exit_rate else None
    )

    comparison = run_latency_comparison(
        num_samples=args.samples, exit_rates=exit_rates, seed=args.seed
    )
    print(comparison.table2())
    print()
    print(comparison.table3())
    print()
    for line in comparison.shape_checks():
        print(line)

    print()
    fig6 = run_figure6(exit_rates=exit_rates, seed=args.seed)
    print(fig6.render())
    for line in fig6.stability_check():
        print(line)

    print()
    fig7 = run_figure7(seed=args.seed)
    print(fig7.render())
    for line in fig7.shape_checks():
        print(line)

    print("\n== §IV-D design ablations ==")
    for network in ("lenet", "alexnet"):
        location = run_branch_location(network, seed=args.seed)
        print(location.render())
        for line in location.shape_checks():
            print(line)
        count = run_branch_count(network, seed=args.seed)
        print(count.render())
        for line in count.shape_checks():
            print(line)
        print()

    print("== device sensitivity ==")
    sensitivity = run_device_sensitivity("resnet18", seed=args.seed)
    print(sensitivity.render())
    for line in sensitivity.shape_checks():
        print(line)


if __name__ == "__main__":
    main()
