"""Unit tests for the comparison planners (Neurosurgeon, Edgent, trivial)."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    BASELINE_PLANNERS,
    Edgent,
    EdgeOnly,
    MobileOnly,
    Neurosurgeon,
    PlanningContext,
    default_accuracy_curve,
)
from repro.models import build_model
from repro.profiling import NetworkProfile
from repro.runtime import (
    EDGE_SERVER,
    MOBILE_BROWSER_WASM,
    ModelLoadStep,
    four_g,
    simulate_plan,
)


@pytest.fixture
def context():
    rng = np.random.default_rng(0)
    model = build_model("lenet", 1, 10, 28, rng=rng)
    profile = NetworkProfile.of(nn.Sequential(model.stem, model.trunk), (1, 28, 28))
    return PlanningContext(
        profile=profile,
        network_name="lenet",
        input_shape=(1, 28, 28),
        link=four_g(seed=0),
        browser=MOBILE_BROWSER_WASM,
        edge=EDGE_SERVER,
        task_bytes=96 * 1024,
    )


class TestPlanningContext:
    def test_task_bytes_override(self, context):
        assert context.input_bytes == 96 * 1024

    def test_default_task_bytes_is_tensor_size(self, context):
        from dataclasses import replace

        bare = replace(context, task_bytes=None)
        assert bare.input_bytes == 28 * 28 * 4


class TestMobileOnly:
    def test_plan_loads_full_model(self, context):
        plan = MobileOnly().plan(context)
        assert plan.model_load_bytes() == context.profile.total_param_bytes

    def test_no_per_sample_communication_once_warm(self, context):
        plan = MobileOnly().plan(context)
        trace = simulate_plan(
            plan, 2, context.link.deterministic(), context.browser, context.edge,
            cold_start=False,
        )
        # Sample 0 pays the one-time model download; sample 1 is pure compute.
        assert trace.samples[0].communication_ms > 0
        assert trace.samples[1].communication_ms == 0.0


class TestEdgeOnly:
    def test_no_model_load(self, context):
        plan = EdgeOnly().plan(context)
        assert plan.model_load_bytes() == 0

    def test_uploads_task_every_sample(self, context):
        plan = EdgeOnly().plan(context)
        trace = simulate_plan(
            plan, 2, context.link.deterministic(), context.browser, context.edge,
            cold_start=False,
        )
        # Both samples pay the upload (~262ms at 3 Mb/s for 96 KB).
        assert trace.samples[1].communication_ms > 200


class TestNeurosurgeon:
    def test_chosen_cut_is_optimal_under_its_cost_model(self, context):
        planner = Neurosurgeon(optimize_with_load=True)
        best = planner.choose_partition(context)
        for cut in range(len(context.profile) + 1):
            assert best.total_ms <= planner.evaluate_cut(context, cut).total_ms + 1e-9

    def test_cut_zero_is_edge_only_shape(self, context):
        plan = Neurosurgeon().plan_for_cut(context, 0)
        assert plan.model_load_bytes() == 0
        assert not plan.setup_steps

    def test_full_cut_is_mobile_only_shape(self, context):
        full = len(context.profile)
        plan = Neurosurgeon().plan_for_cut(context, full)
        assert plan.model_load_bytes() == context.profile.total_param_bytes
        # No transfers per sample.
        from repro.runtime import TransferStep

        assert not any(isinstance(s, TransferStep) for s in plan.per_sample_steps)

    def test_preloaded_deployment_omits_load(self, context):
        plan = Neurosurgeon(deploy_preloaded=True).plan_for_cut(context, 3)
        assert not any(isinstance(s, ModelLoadStep) for s in plan.setup_steps)

    def test_literature_mode_ignores_load_in_search(self, context):
        app_era = Neurosurgeon(optimize_with_load=False)
        decision = app_era.choose_partition(context)
        assert decision.load_ms == 0.0

    def test_decision_breakdown_sums(self, context):
        decision = Neurosurgeon().evaluate_cut(context, 2)
        assert decision.total_ms == pytest.approx(
            decision.load_ms
            + decision.browser_ms
            + decision.transfer_ms
            + decision.edge_ms
        )


class TestEdgent:
    def test_candidate_exits_include_full_depth(self, context):
        exits = Edgent().candidate_exits(context)
        assert len(context.profile) in exits
        assert all(0 < e <= len(context.profile) for e in exits)

    def test_budget_forces_earlier_exit(self, context):
        unbounded = Edgent(optimize_with_load=True).choose(context)
        tight = Edgent(latency_budget_ms=50.0, optimize_with_load=True).choose(context)
        assert tight.exit_layer <= unbounded.exit_layer

    def test_infeasible_budget_minimizes_latency(self, context):
        impossible = Edgent(latency_budget_ms=0.001, optimize_with_load=True)
        decision = impossible.choose(context)
        assert not decision.meets_budget

    def test_accuracy_curve_monotone(self):
        fractions = np.linspace(0.05, 1.0, 10)
        values = [default_accuracy_curve(f) for f in fractions]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_plan_for_explicit_points(self, context):
        plan = Edgent().plan_for(context, exit_layer=6, cut=2)
        assert plan.model_load_bytes() > 0
        trace = simulate_plan(
            plan, 1, context.link.deterministic(), context.browser, context.edge
        )
        assert trace.samples[0].total_ms > 0

    def test_cut_equals_exit_runs_fully_on_device(self, context):
        plan = Edgent().plan_for(context, exit_layer=4, cut=4)
        from repro.runtime import TransferStep

        assert not any(isinstance(s, TransferStep) for s in plan.per_sample_steps)


class TestRegistryAndExpectation:
    def test_registry_contents(self):
        assert set(BASELINE_PLANNERS) == {
            "neurosurgeon",
            "edgent",
            "mobile-only",
            "edge-only",
        }

    def test_expected_sample_ms_positive(self, context):
        for cls in BASELINE_PLANNERS.values():
            planner = cls()
            assert planner.expected_sample_ms(context) > 0
