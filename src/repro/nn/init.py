"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so every
training run in the reproduction is seedable end to end — a requirement
for the experiment harness, which records paper-vs-measured numbers.
"""

from __future__ import annotations

import math

import numpy as np


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return (fan_in, fan_out) for linear or conv weight shapes."""
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out, in, k, k)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    """He initialization — the right default for ReLU networks."""
    fan_in, _ = _fan(shape)
    std = gain / math.sqrt(fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    fan_in, _ = _fan(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialization — used for the final full-precision FC layer."""
    fan_in, fan_out = _fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
