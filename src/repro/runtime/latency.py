"""Execution plans and the latency/communication accounting engine.

Every approach compared in the paper — LCRS, Neurosurgeon, Edgent,
mobile-only, edge-only — reduces to a *plan*: which bytes must be moved
where, and which FLOPs run on which device, per sample and per session.
This module defines that vocabulary and the simulator that prices a plan
over a stream of samples, separating compute from communication so both
Table II (end-to-end latency) and Table III (communication costs) fall
out of one run.

Session semantics (documented divergence — the paper is ambiguous about
when model loading is paid):

* **cold start** — every sample is a fresh page visit: model-load cost
  is paid per sample.  This matches the magnitude of the paper's
  Table II/III baselines (e.g. mobile-only AlexNet ≈ 9 s/sample, which
  is only explicable as a per-sample model download).
* **warm session** — the model loads once, then samples stream (the
  Figure 6 regime: "average latency is almost stable" as samples grow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..profiling.layer_stats import LayerProfile, NetworkProfile
from .network import NetworkLink
from .profiles import DeviceProfile


class Location(enum.Enum):
    """Where a plan step executes."""

    BROWSER = "browser"
    EDGE = "edge"


@dataclass(frozen=True)
class ComputeStep:
    """Run layers on a device.  ``float_flops``/``binary_flops`` split the
    work between fp32 and XNOR kernels; ``num_layers`` prices dispatch
    overhead."""

    location: Location
    float_flops: float
    binary_flops: float = 0.0
    num_layers: int = 0
    label: str = ""

    def duration_ms(self, device: DeviceProfile) -> float:
        return (
            device.compute_ms(self.float_flops, binary=False)
            + device.compute_ms(self.binary_flops, binary=True)
            + device.layer_overhead_ms * self.num_layers
        )


@dataclass(frozen=True)
class TransferStep:
    """Move bytes across the link (direction chosen by ``upload``)."""

    num_bytes: float
    upload: bool
    label: str = ""

    def duration_ms(self, link: NetworkLink) -> float:
        if self.upload:
            return link.upload_ms(self.num_bytes)
        return link.download_ms(self.num_bytes)


@dataclass(frozen=True)
class ModelLoadStep:
    """Download + parse model bytes into the browser engine."""

    num_bytes: float
    label: str = ""

    def duration_ms(self, link: NetworkLink, browser: DeviceProfile) -> float:
        return link.download_ms(self.num_bytes) + browser.parse_ms(int(self.num_bytes))


PlanStep = ComputeStep | TransferStep | ModelLoadStep


@dataclass
class ExecutionPlan:
    """A priced recipe for classifying one sample under one approach.

    ``setup_steps`` run once per session (warm) or once per sample
    (cold start); ``per_sample_steps`` always run per sample.  For
    approaches whose per-sample path depends on a stochastic decision
    (LCRS's exit), supply ``miss_steps`` and a per-sample hit mask at
    simulation time.
    """

    approach: str
    network: str
    setup_steps: list[PlanStep] = field(default_factory=list)
    per_sample_steps: list[PlanStep] = field(default_factory=list)
    miss_steps: list[PlanStep] = field(default_factory=list)

    def model_load_bytes(self) -> float:
        return sum(
            s.num_bytes for s in self.setup_steps if isinstance(s, ModelLoadStep)
        )


@dataclass(frozen=True)
class SampleCost:
    """Per-sample breakdown produced by the simulator.

    ``retry_ms`` is the slice of ``communication_ms`` spent on failed
    miss-path attempts — timeout windows, wasted round trips, and
    backoff sleeps — so retransmission cost is visible in Figure-6-style
    traces without changing the compute/communication split.

    ``queue_ms`` is the slice of ``communication_ms`` spent waiting in a
    shared edge scheduler's queue (dynamic-batching window + head-of-line
    wait); it is zero for sessions served by a private endpoint.

    ``quality_tier`` is the accuracy tier (active ABC-Net bases) the
    sample's branch pass ran at; ``1`` is the single-base XNOR layer
    every pre-tier session used.
    """

    total_ms: float
    compute_ms: float
    communication_ms: float
    exited_locally: Optional[bool] = None
    retry_ms: float = 0.0
    queue_ms: float = 0.0
    quality_tier: int = 1


@dataclass
class SessionTrace:
    """Outcome of simulating a plan over a sample stream."""

    approach: str
    network: str
    samples: list[SampleCost]

    @property
    def mean_latency_ms(self) -> float:
        return float(np.mean([s.total_ms for s in self.samples]))

    @property
    def mean_compute_ms(self) -> float:
        return float(np.mean([s.compute_ms for s in self.samples]))

    @property
    def mean_communication_ms(self) -> float:
        return float(np.mean([s.communication_ms for s in self.samples]))

    @property
    def mean_retry_ms(self) -> float:
        """Mean per-sample cost of failed transport attempts + backoff."""
        return float(np.mean([s.retry_ms for s in self.samples]))

    @property
    def mean_queue_ms(self) -> float:
        """Mean per-sample shared-edge queueing delay."""
        return float(np.mean([s.queue_ms for s in self.samples]))

    def latencies(self) -> np.ndarray:
        return np.array([s.total_ms for s in self.samples])

    def running_average(self) -> np.ndarray:
        """Average latency after each sample — the Figure 6 series."""
        lat = self.latencies()
        return np.cumsum(lat) / np.arange(1, len(lat) + 1)


def _price_steps(
    steps: Sequence[PlanStep],
    link: NetworkLink,
    browser: DeviceProfile,
    edge: DeviceProfile,
) -> tuple[float, float]:
    """Return (compute_ms, communication_ms) for a step sequence."""
    compute = 0.0
    comm = 0.0
    for step in steps:
        if isinstance(step, ComputeStep):
            device = browser if step.location is Location.BROWSER else edge
            compute += step.duration_ms(device)
        elif isinstance(step, TransferStep):
            comm += step.duration_ms(link)
        elif isinstance(step, ModelLoadStep):
            comm += link.download_ms(step.num_bytes)
            compute += browser.parse_ms(int(step.num_bytes))
        else:  # pragma: no cover - exhaustive by construction
            raise TypeError(f"unknown plan step {step!r}")
    return compute, comm


def simulate_plan(
    plan: ExecutionPlan,
    num_samples: int,
    link: NetworkLink,
    browser: DeviceProfile,
    edge: DeviceProfile,
    cold_start: bool = True,
    miss_mask: Optional[Sequence[bool]] = None,
    include_setup: bool = True,
    retry_ms: Optional[Sequence[float]] = None,
    queue_ms: Optional[Sequence[float]] = None,
    quality_tier: int = 1,
) -> SessionTrace:
    """Price a plan over ``num_samples`` samples.

    ``miss_mask[i]`` marks samples whose ``miss_steps`` fire (for LCRS:
    binary-branch misses that travel to the edge).  In warm sessions the
    setup cost is charged to the first sample only; ``include_setup=False``
    skips it entirely (for callers that price samples one at a time and
    account for the session's setup themselves).

    ``retry_ms[i]`` charges extra communication time to sample ``i`` for
    failed miss-path attempts (retransmissions, timeout waits, backoff)
    — it applies whether or not the sample's ``miss_steps`` fired, since
    a sample that exhausted its retries and fell back locally still paid
    for the attempts.

    ``queue_ms[i]`` charges scheduler queueing delay (shared-edge dynamic
    batching) to sample ``i``, also as communication time.

    ``quality_tier`` is recorded verbatim on every :class:`SampleCost`
    (the plan itself should already price the tier's reduced branch
    FLOPs — see ``LCRSAssets.plan``).
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if miss_mask is not None and len(miss_mask) < num_samples:
        raise ValueError("miss_mask shorter than num_samples")
    if retry_ms is not None and len(retry_ms) < num_samples:
        raise ValueError("retry_ms shorter than num_samples")
    if queue_ms is not None and len(queue_ms) < num_samples:
        raise ValueError("queue_ms shorter than num_samples")

    samples: list[SampleCost] = []
    for i in range(num_samples):
        compute = 0.0
        comm = 0.0
        if include_setup and (cold_start or i == 0):
            setup_compute, setup_comm = _price_steps(
                plan.setup_steps, link, browser, edge
            )
            compute += setup_compute
            comm += setup_comm
        step_compute, step_comm = _price_steps(
            plan.per_sample_steps, link, browser, edge
        )
        compute += step_compute
        comm += step_comm

        missed: Optional[bool] = None
        if plan.miss_steps:
            missed = bool(miss_mask[i]) if miss_mask is not None else False
            if missed:
                miss_compute, miss_comm = _price_steps(
                    plan.miss_steps, link, browser, edge
                )
                compute += miss_compute
                comm += miss_comm

        retries = float(retry_ms[i]) if retry_ms is not None else 0.0
        queued = float(queue_ms[i]) if queue_ms is not None else 0.0
        comm += retries + queued

        samples.append(
            SampleCost(
                total_ms=compute + comm,
                compute_ms=compute,
                communication_ms=comm,
                exited_locally=None if missed is None else not missed,
                retry_ms=retries,
                queue_ms=queued,
                quality_tier=int(quality_tier),
            )
        )
    return SessionTrace(approach=plan.approach, network=plan.network, samples=samples)


# ----------------------------------------------------------------------
# Helpers to turn layer profiles into plan steps
# ----------------------------------------------------------------------
def compute_step_from_layers(
    layers: Sequence[LayerProfile], location: Location, label: str = ""
) -> ComputeStep:
    """Aggregate a layer range into one compute step, splitting fp32/XNOR."""
    return ComputeStep(
        location=location,
        float_flops=sum(l.flops for l in layers if not l.is_binary),
        binary_flops=sum(l.flops for l in layers if l.is_binary),
        num_layers=len(layers),
        label=label,
    )


def profile_compute_step(
    profile: NetworkProfile, location: Location, label: str = ""
) -> ComputeStep:
    return compute_step_from_layers(profile.layers, location, label)
