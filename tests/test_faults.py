"""Fault-tolerant collaborative inference: injection, retry, fallback.

Covers the transport fault model (:class:`FaultyLink`), the client-side
:class:`RetryPolicy`, the session-level graceful degradation contract
(a dead link costs accuracy, never availability), retry pricing in the
latency model, and the regression fixes around reply correlation,
session ids, and server-side error containment.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.profiling import FaultCounters
from repro.runtime import (
    SERVED_BY_BRANCH,
    SERVED_BY_EDGE,
    SERVED_BY_FALLBACK,
    BatchInferenceRequest,
    BatchInferenceResponse,
    ErrorResponse,
    FaultyLink,
    FrameDropped,
    FrameTimeout,
    InferenceRequest,
    InferenceResponse,
    LCRSDeployment,
    ProtocolError,
    SessionConfig,
    RetryPolicy,
    decode_frame,
    encode_frame,
    faulty,
    four_g,
    simulate_plan,
)

#: Deterministic fast policy: failed attempt = 100 ms wait, backoff
#: 10 → 20 ms with no jitter, three attempts.
FAST_POLICY = RetryPolicy(
    max_attempts=3,
    per_attempt_timeout_ms=100.0,
    backoff_base_ms=10.0,
    backoff_multiplier=2.0,
    jitter=0.0,
)


@pytest.fixture
def strict_system(trained_system, tiny_mnist):
    """Recalibrate so ~80 % of test samples take the miss path."""
    from repro.core import branch_entropies

    _, test = tiny_mnist
    entropies, _, _ = branch_entropies(trained_system.model, test.images)
    original = trained_system.calibration
    trained_system.calibration = replace(
        original, threshold=float(np.quantile(entropies, 0.2))
    )
    yield trained_system, test
    trained_system.calibration = original


def branch_predictions(deployment, images) -> np.ndarray:
    _, logits, _, _ = deployment.browser.process_batch(np.asarray(images))
    return logits.argmax(axis=1)


class TestFaultyLink:
    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            FaultyLink(inner=four_g(), drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultyLink(inner=four_g(), corrupt_prob=-0.1)

    def test_rejects_exclusive_probabilities_over_one(self):
        with pytest.raises(ValueError):
            FaultyLink(inner=four_g(), drop_prob=0.6, timeout_prob=0.5)

    def test_rejects_unknown_scripted_fault(self):
        with pytest.raises(ValueError):
            FaultyLink(inner=four_g(), script=("explode",))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            faulty(four_g(), "apocalypse")

    def test_partition_drops_without_reaching_server(self):
        link = faulty(four_g(), "partition")
        calls = []
        with pytest.raises(FrameDropped):
            link.exchange(b"LCRPframe", calls.append)
        assert calls == []

    def test_scripted_fault_schedule(self):
        link = FaultyLink(
            inner=four_g(), script=("drop", "timeout", "corrupt", "duplicate")
        )
        calls = []

        def handler(frame: bytes) -> bytes:
            calls.append(frame)
            return b"REPLY"

        with pytest.raises(FrameDropped):
            link.exchange(b"LCRPframe", handler)
        assert calls == []  # dropped before the server

        with pytest.raises(FrameTimeout):
            link.exchange(b"LCRPframe", handler)
        assert len(calls) == 1  # the server did the work; the reply was lost

        assert link.exchange(b"LCRPframe", handler) == b"REPLY"
        assert link.last_faults == ("corrupt",)
        assert calls[1] != b"LCRPframe"  # delivered mangled

        assert link.exchange(b"LCRPframe", handler) == b"REPLY"
        assert link.last_faults == ("duplicate",)
        assert calls[-1] == calls[-2] == b"LCRPframe"  # served twice

        # exhausted script behaves as a clean link
        assert link.exchange(b"LCRPframe", handler) == b"REPLY"
        assert link.last_faults == ()

    def test_seeded_fault_sequence_reproducible(self):
        def run(seed: int) -> list[str]:
            link = faulty(four_g(), "harsh", seed=seed)
            events = []
            for _ in range(50):
                try:
                    link.exchange(b"LCRPframe", lambda f: b"R")
                    events.append("/".join(link.last_faults) or "ok")
                except FrameDropped:
                    events.append("drop")
                except FrameTimeout:
                    events.append("timeout")
            return events

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_timing_delegates_to_wrapped_link(self):
        plain = four_g(seed=3)
        wrapped = faulty(four_g(seed=3), "harsh", seed=0)
        assert wrapped.upload_ms(4096) == plain.upload_ms(4096)
        assert wrapped.download_ms(4096) == plain.download_ms(4096)
        assert wrapped.name == "4g"
        deterministic = wrapped.deterministic()
        assert deterministic.inner.jitter_sigma == 0.0
        assert deterministic.drop_prob == wrapped.drop_prob


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"per_attempt_timeout_ms": 0.0},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.0},
            {"deadline_ms": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_ms=50.0,
            backoff_multiplier=2.0,
            backoff_max_ms=150.0,
            jitter=0.0,
        )
        rng = np.random.default_rng(0)
        assert policy.backoff_ms(1, rng) == 50.0
        assert policy.backoff_ms(2, rng) == 100.0
        assert policy.backoff_ms(3, rng) == 150.0  # capped
        assert policy.backoff_ms(9, rng) == 150.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base_ms=100.0, jitter=0.2)
        rng = np.random.default_rng(0)
        draws = [policy.backoff_ms(1, rng) for _ in range(200)]
        assert all(80.0 <= d <= 120.0 for d in draws)
        assert len(set(draws)) > 1


class TestRetryPricing:
    def test_simulate_plan_prices_retry_ms(self, trained_system):
        deployment = LCRSDeployment(trained_system, four_g(seed=0).deterministic())
        plan = deployment.plan()
        clean = simulate_plan(
            plan, 1, deployment.link, deployment.browser_device,
            deployment.edge_device, miss_mask=[False],
        ).samples[0]
        priced = simulate_plan(
            plan, 1, deployment.link, deployment.browser_device,
            deployment.edge_device, miss_mask=[False], retry_ms=[250.0],
        ).samples[0]
        assert priced.retry_ms == 250.0
        assert priced.communication_ms == pytest.approx(clean.communication_ms + 250.0)
        assert priced.total_ms == pytest.approx(clean.total_ms + 250.0)
        assert clean.retry_ms == 0.0

    def test_retry_ms_length_validated(self, trained_system):
        deployment = LCRSDeployment(trained_system, four_g(seed=0))
        with pytest.raises(ValueError):
            simulate_plan(
                deployment.plan(), 2, deployment.link,
                deployment.browser_device, deployment.edge_device,
                retry_ms=[1.0],
            )


class TestRegressionFixes:
    def test_session_ids_monotonic_and_distinct(self, trained_system):
        first = LCRSDeployment(trained_system, four_g(seed=0))
        second = LCRSDeployment(trained_system, four_g(seed=0))
        assert second._session_id > first._session_id

    def test_batch_request_validates_header_before_decode(self):
        # Payload is garbage for the codec AND the header invariant is
        # broken: the batch-level message must win, not a codec error.
        request = BatchInferenceRequest(
            session_id=1,
            sequences=(0, 1, 2),
            codec="fp32",
            feature_shape=(2, 6, 14, 14),
            payload=b"\x01",
        )
        with pytest.raises(ProtocolError, match="batch of 3 sequences"):
            request.features()

    def test_endpoint_exception_becomes_500(self, trained_system):
        from repro.runtime import EdgeEndpoint, EdgeProtocolServer

        server = EdgeProtocolServer(EdgeEndpoint(trained_system.model.main_trunk))
        # Well-formed frame, decodable features — but the wrong shape
        # for the trunk, so inference itself raises.
        bad = np.zeros((1, 3, 5, 5), dtype=np.float32)
        reply = decode_frame(
            server.handle(encode_frame(InferenceRequest.from_features(1, 0, "fp32", bad)))
        )
        assert isinstance(reply, ErrorResponse)
        assert reply.code == 500

        batch_reply = decode_frame(
            server.handle(
                encode_frame(BatchInferenceRequest.from_features(1, [0], "fp32", bad))
            )
        )
        assert isinstance(batch_reply, ErrorResponse)
        assert batch_reply.code == 500

    def test_batched_replies_mapped_by_sequence(self, strict_system):
        """A server that reorders its batch answers must not scramble
        the per-sample predictions (the old code zipped by position)."""
        system, test = strict_system
        images = test.images[:30]

        reference = LCRSDeployment(
            system, four_g(seed=2).deterministic()
        ).run_session(images)

        deployment = LCRSDeployment(system, four_g(seed=2).deterministic())
        inner_handle = deployment._edge_server.handle

        def reordering_handle(frame: bytes) -> bytes:
            reply = decode_frame(inner_handle(frame))
            if isinstance(reply, BatchInferenceResponse) and len(reply.sequences) > 1:
                order = list(range(len(reply.sequences)))[::-1]
                reply = BatchInferenceResponse(
                    session_id=reply.session_id,
                    sequences=tuple(reply.sequences[i] for i in order),
                    class_ids=tuple(reply.class_ids[i] for i in order),
                    confidences=tuple(reply.confidences[i] for i in order),
                )
            return encode_frame(reply)

        deployment._edge_server.handle = reordering_handle
        batched = deployment.run_session(images, config=SessionConfig(batch_size=10))
        np.testing.assert_array_equal(batched.predictions, reference.predictions)
        assert all(
            o.served_by == SERVED_BY_EDGE
            for o in batched.outcomes
            if not o.exited_locally
        )

    @pytest.mark.parametrize("batch_size", [1, 10])
    def test_mismatched_session_id_rejected(self, strict_system, batch_size):
        """Replies carrying the wrong correlation ids are failures, not
        answers — the session retries and then falls back."""
        system, test = strict_system
        deployment = LCRSDeployment(
            system, four_g(seed=2).deterministic(), retry_policy=FAST_POLICY
        )
        inner_handle = deployment._edge_server.handle

        def confused_handle(frame: bytes) -> bytes:
            reply = decode_frame(inner_handle(frame))
            if isinstance(reply, (InferenceResponse, BatchInferenceResponse)):
                reply = replace(reply, session_id=reply.session_id + 1)
            return encode_frame(reply)

        deployment._edge_server.handle = confused_handle
        session = deployment.run_session(
            test.images[:20], config=SessionConfig(batch_size=batch_size)
        )
        misses = [o for o in session.outcomes if not o.exited_locally]
        assert misses
        assert all(o.served_by == SERVED_BY_FALLBACK for o in misses)
        assert deployment.fault_counters.replies_rejected > 0
        np.testing.assert_array_equal(
            session.predictions, branch_predictions(deployment, test.images[:20])
        )


class TestGracefulDegradation:
    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_full_partition_serves_every_frame(self, strict_system, batch_size):
        """Acceptance: with a 100 %-drop link both serving paths finish
        without raising, every miss is a binary-branch fallback, and the
        session accuracy equals branch-only accuracy."""
        system, test = strict_system
        images, labels = test.images[:40], test.labels[:40]
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(images, config=SessionConfig(batch_size=batch_size))

        assert len(session.outcomes) == len(images)
        misses = [o for o in session.outcomes if not o.exited_locally]
        assert misses  # the strict threshold forces miss traffic
        assert all(o.served_by == SERVED_BY_FALLBACK for o in misses)
        assert all(o.attempts == FAST_POLICY.max_attempts for o in misses)
        assert all(
            o.served_by == SERVED_BY_BRANCH and o.attempts == 0
            for o in session.outcomes
            if o.exited_locally
        )
        assert deployment.edge.requests_served == 0  # nothing got through

        expected = branch_predictions(deployment, images)
        np.testing.assert_array_equal(session.predictions, expected)
        assert session.accuracy(labels) == pytest.approx(
            float((expected == labels).mean())
        )
        assert session.fallback_rate == pytest.approx(len(misses) / len(images))
        assert session.degraded

    def test_partition_counters(self, strict_system):
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(test.images[:20])
        misses = sum(not o.exited_locally for o in session.outcomes)
        counters = deployment.fault_counters
        assert counters.fallbacks == misses
        assert counters.frames_sent == misses * FAST_POLICY.max_attempts
        assert counters.frames_dropped == misses * FAST_POLICY.max_attempts
        assert counters.retries == misses * (FAST_POLICY.max_attempts - 1)
        assert counters.failures == counters.frames_dropped

    def test_partition_batched_counts_fallbacks_per_sample(self, strict_system):
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(
            test.images[:20], config=SessionConfig(batch_size=7)
        )
        misses = sum(not o.exited_locally for o in session.outcomes)
        assert deployment.fault_counters.fallbacks == misses

    def test_fallback_cost_prices_failed_attempts(self, strict_system):
        """Three dropped attempts with jitter-free backoff cost exactly
        3×timeout + backoff(1) + backoff(2)."""
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(test.images[:20])
        expected_retry = 3 * 100.0 + 10.0 + 20.0
        for outcome in session.outcomes:
            if outcome.exited_locally:
                assert outcome.cost.retry_ms == 0.0
            else:
                assert outcome.cost.retry_ms == pytest.approx(expected_retry)
                assert outcome.cost.communication_ms >= expected_retry
                assert outcome.cost.total_ms == pytest.approx(
                    outcome.cost.compute_ms + outcome.cost.communication_ms
                )

    def test_single_drop_then_recovery(self, strict_system):
        """One dropped frame: the retry succeeds, the edge serves the
        sample, and the extra latency is exactly timeout + backoff."""
        system, test = strict_system
        images = test.images[:20]

        clean = LCRSDeployment(
            system, four_g(seed=2).deterministic(), retry_policy=FAST_POLICY
        ).run_session(images)

        deployment = LCRSDeployment(
            system,
            FaultyLink(inner=four_g(seed=2).deterministic(), script=("drop",)),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(images)

        np.testing.assert_array_equal(session.predictions, clean.predictions)
        first_miss = next(i for i, o in enumerate(session.outcomes) if not o.exited_locally)
        retried = session.outcomes[first_miss]
        assert retried.served_by == SERVED_BY_EDGE
        assert retried.attempts == 2
        assert retried.cost.retry_ms == pytest.approx(100.0 + 10.0)
        assert retried.cost.total_ms == pytest.approx(
            clean.outcomes[first_miss].cost.total_ms + 110.0
        )
        # every other sample is untouched
        for i, (a, b) in enumerate(zip(clean.outcomes, session.outcomes)):
            if i != first_miss:
                assert b.cost.total_ms == pytest.approx(a.cost.total_ms)
        assert deployment.fault_counters.frames_dropped == 1
        assert deployment.fault_counters.retries == 1
        assert deployment.fault_counters.fallbacks == 0

    def test_timeout_still_reaches_server(self, strict_system):
        """A timeout loses the reply, not the request: the endpoint does
        the work and the client retries."""
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            FaultyLink(inner=four_g(seed=2).deterministic(), script=("timeout",)),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(test.images[:20])
        misses = sum(not o.exited_locally for o in session.outcomes)
        assert deployment.fault_counters.frames_timed_out == 1
        assert deployment.edge.requests_served == misses + 1  # one served twice

    def test_corrupted_frame_rejected_by_server_then_retried(self, strict_system):
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            FaultyLink(inner=four_g(seed=2).deterministic(), script=("corrupt",)),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(test.images[:20])
        counters = deployment.fault_counters
        assert counters.frames_corrupted == 1
        assert counters.edge_errors == 1  # the mangled frame drew a 400
        assert counters.fallbacks == 0
        assert all(
            o.served_by == SERVED_BY_EDGE
            for o in session.outcomes
            if not o.exited_locally
        )

    def test_duplicate_delivery_is_harmless(self, strict_system):
        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            FaultyLink(inner=four_g(seed=2).deterministic(), script=("duplicate",)),
            retry_policy=FAST_POLICY,
        )
        clean = LCRSDeployment(
            system, four_g(seed=2).deterministic(), retry_policy=FAST_POLICY
        ).run_session(test.images[:20])
        session = deployment.run_session(test.images[:20])
        np.testing.assert_array_equal(session.predictions, clean.predictions)
        misses = sum(not o.exited_locally for o in session.outcomes)
        assert deployment.fault_counters.frames_duplicated == 1
        assert deployment.edge.requests_served == misses + 1

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_zero_fault_link_is_bit_identical(self, strict_system, batch_size):
        """Acceptance: a FaultyLink with every probability at zero must
        reproduce the plain link's predictions, exits, and priced
        latencies exactly."""
        system, test = strict_system
        images = test.images[:30]
        plain = LCRSDeployment(system, four_g(seed=2).deterministic()).run_session(
            images, config=SessionConfig(batch_size=batch_size)
        )
        wrapped_link = FaultyLink(inner=four_g(seed=2).deterministic())
        deployment = LCRSDeployment(system, wrapped_link)
        wrapped = deployment.run_session(images, config=SessionConfig(batch_size=batch_size))

        np.testing.assert_array_equal(wrapped.predictions, plain.predictions)
        for a, b in zip(plain.outcomes, wrapped.outcomes):
            assert a.exited_locally == b.exited_locally
            assert b.cost.total_ms == a.cost.total_ms
            assert b.cost.communication_ms == a.cost.communication_ms
            assert b.cost.retry_ms == 0.0
            assert b.served_by in (SERVED_BY_BRANCH, SERVED_BY_EDGE)
            assert b.attempts == (0 if b.exited_locally else 1)
        counters = deployment.fault_counters
        assert counters.failures == 0
        assert counters.fallbacks == 0
        assert counters.retries == 0

    def test_deadline_stops_retrying_early(self, strict_system):
        system, test = strict_system
        policy = RetryPolicy(
            max_attempts=10,
            per_attempt_timeout_ms=100.0,
            backoff_base_ms=0.0,
            jitter=0.0,
            deadline_ms=250.0,
        )
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=policy,
        )
        session = deployment.run_session(test.images[:20])
        misses = [o for o in session.outcomes if not o.exited_locally]
        assert misses
        # 100 ms per failure: the third failure crosses the 250 ms deadline.
        assert all(o.attempts == 3 for o in misses)
        assert all(o.served_by == SERVED_BY_FALLBACK for o in misses)


class TestFaultCountersType:
    def test_reset_and_dict_roundtrip(self):
        counters = FaultCounters(frames_sent=3, frames_dropped=2, retries=1)
        as_dict = counters.as_dict()
        assert as_dict["frames_sent"] == 3 and as_dict["retries"] == 1
        counters.reset()
        assert counters.as_dict() == FaultCounters().as_dict()
        assert counters.failures == 0


class TestWebARFallbackSurface:
    def test_pipeline_carries_served_by(self, strict_system):
        from repro.webar.pipeline import LCRSRecognizer, WebARPipeline

        system, test = strict_system
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2).deterministic(), "partition"),
            retry_policy=FAST_POLICY,
        )
        report = WebARPipeline(LCRSRecognizer(deployment)).run(
            test.images[:15], case_name="partition"
        )
        assert report.fallback_rate > 0.0
        fallbacks = [i for i in report.interactions if i.served_by == "binary-fallback"]
        assert fallbacks and all(i.attempts == FAST_POLICY.max_attempts for i in fallbacks)


class TestDegradationExperiment:
    def test_sweep_ends_at_branch_accuracy(self, trained_system, tiny_mnist):
        from repro.experiments import run_degradation

        _, test = tiny_mnist
        result = run_degradation(
            trained_system,
            test.images[:40],
            test.labels[:40],
            drop_probs=(0.0, 1.0),
            link=four_g(seed=0).deterministic(),
            batch_size=8,
        )
        assert result.points[0].fallback_rate == 0.0
        assert result.points[-1].accuracy == pytest.approx(
            result.branch_only_accuracy
        )
        assert result.points[-1].mean_retry_ms > 0.0
        assert "Graceful degradation" in result.render()
        assert all(check.startswith("[ok]") for check in result.shape_checks())


class TestFaultSmokeProfile:
    """The `make fault-smoke` hook: run short sessions under the profile
    named by REPRO_FAULT_PROFILE (default: smoke) and assert the
    degraded path's invariants hold whatever the link does."""

    @pytest.mark.parametrize("batch_size", [1, 8])
    def test_smoke_profile_session_invariants(self, strict_system, batch_size):
        profile = os.environ.get("REPRO_FAULT_PROFILE", "smoke")
        if profile == "none":
            profile = "smoke"
        system, test = strict_system
        images, labels = test.images[:40], test.labels[:40]
        deployment = LCRSDeployment(
            system,
            faulty(four_g(seed=2), profile, seed=13),
            retry_policy=FAST_POLICY,
        )
        session = deployment.run_session(images, config=SessionConfig(batch_size=batch_size))

        assert len(session.outcomes) == len(images)
        counters = deployment.fault_counters
        fallbacks = sum(o.served_by == SERVED_BY_FALLBACK for o in session.outcomes)
        assert counters.fallbacks == fallbacks
        branch = branch_predictions(deployment, images)
        for i, outcome in enumerate(session.outcomes):
            assert outcome.served_by in (
                SERVED_BY_BRANCH,
                SERVED_BY_EDGE,
                SERVED_BY_FALLBACK,
            )
            if outcome.served_by != SERVED_BY_EDGE:
                assert outcome.prediction == int(branch[i])
            if outcome.exited_locally:
                assert outcome.attempts == 0
            else:
                assert 1 <= outcome.attempts <= FAST_POLICY.max_attempts
        # degradation never hurts availability: every frame got an answer
        assert session.predictions.shape == (len(images),)
