"""Procedural stand-ins for the paper's public datasets.

The evaluation (§V) uses MNIST, FashionMNIST, CIFAR10 and CIFAR100.  This
offline reproduction generates class-structured synthetic datasets with
the same tensor shapes and class counts, and a *difficulty ladder* tuned
so the paper's qualitative phenomena reproduce:

* shallow networks do well on the MNIST-like set, deeper ones win on the
  CIFAR-like sets;
* binary branches trail full-precision branches by a few points, with the
  gap widening as difficulty rises;
* entropy-gated early exit rates fall as difficulty rises (Table I's
  94 % → 60 % spread).

Each class owns a handful of smooth random *prototypes* (low-resolution
fields bilinearly upsampled, giving conv-friendly spatial structure).  A
sample is a randomly chosen prototype pushed through a random affine warp
plus noise — intra-class variation — while prototypes of different
classes are independent draws — inter-class separation.  Difficulty knobs
are the warp magnitude, noise level, and prototype mixing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .augment import affine_warp
from .dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic dataset.

    Parameters map to the generator as follows: ``grid`` is the prototype
    field resolution (lower = smoother, easier); ``warp`` scales the
    random affine distortion; ``noise`` is the additive Gaussian sigma;
    ``prototype_mix`` blends a sample's prototype toward a global
    distractor field, eroding class evidence.
    """

    name: str
    channels: int
    height: int
    width: int
    num_classes: int
    grid: int = 7
    prototypes_per_class: int = 3
    warp: float = 1.0
    noise: float = 0.15
    prototype_mix: float = 0.0
    contrast: float = 1.0
    texture: float = 0.0

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.height, self.width)


#: Registry mirroring the paper's dataset grid (shape and class counts match).
#: Difficulty knobs below were tuned empirically so a jointly-trained
#: LeNet lands near the paper's Table I accuracy bands (≈99 % on the
#: MNIST-like set, ≈65 % on the CIFAR10-like set, ≈60 % with ≈83 % exit
#: rate on the CIFAR100-like set).
SPECS: dict[str, SyntheticSpec] = {
    "mnist": SyntheticSpec(
        name="mnist", channels=1, height=28, width=28, num_classes=10,
        grid=5, warp=1.5, noise=0.80, prototype_mix=0.20, contrast=1.3,
    ),
    "fashion_mnist": SyntheticSpec(
        name="fashion_mnist", channels=1, height=28, width=28, num_classes=10,
        grid=6, warp=1.8, noise=0.80, prototype_mix=0.30, contrast=1.1,
    ),
    "cifar10": SyntheticSpec(
        name="cifar10", channels=3, height=32, width=32, num_classes=10,
        grid=8, warp=3.0, noise=1.00, prototype_mix=0.62, contrast=1.0,
        texture=0.35,
    ),
    "cifar100": SyntheticSpec(
        name="cifar100", channels=3, height=32, width=32, num_classes=100,
        grid=8, warp=2.5, noise=0.85, prototype_mix=0.57, contrast=1.0,
        texture=0.35,
    ),
}

#: Paper-order listing used by the Table I harness.
DATASET_NAMES: tuple[str, ...] = ("mnist", "fashion_mnist", "cifar10", "cifar100")


def _bilinear_upsample(field: np.ndarray, height: int, width: int) -> np.ndarray:
    """Upsample a (C, g, g) field to (C, height, width) bilinearly."""
    c, gh, gw = field.shape
    ys = np.linspace(0, gh - 1, height)
    xs = np.linspace(0, gw - 1, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, gh - 1)
    x1 = np.minimum(x0 + 1, gw - 1)
    wy = (ys - y0)[None, :, None]
    wx = (xs - x0)[None, None, :]
    top = field[:, y0][:, :, x0] * (1 - wx) + field[:, y0][:, :, x1] * wx
    bot = field[:, y1][:, :, x0] * (1 - wx) + field[:, y1][:, :, x1] * wx
    return top * (1 - wy) + bot * wy


def class_prototypes(spec: SyntheticSpec, seed: int = 0) -> np.ndarray:
    """Generate the prototype bank, shape (classes, per_class, C, H, W).

    Prototypes are deterministic given (spec, seed), so train and test
    splits share the same class structure — exactly like sampling fresh
    images from a fixed data distribution.
    """
    rng = np.random.default_rng(seed)
    banks = []
    for _ in range(spec.num_classes):
        protos = []
        base = rng.standard_normal((spec.channels, spec.grid, spec.grid))
        for _ in range(spec.prototypes_per_class):
            # Variants share the class's base field, so intra-class
            # prototypes correlate but are not identical.
            variant = 0.75 * base + 0.25 * rng.standard_normal(base.shape)
            protos.append(_bilinear_upsample(variant, spec.height, spec.width))
        banks.append(np.stack(protos))
    return np.asarray(banks, dtype=np.float32)


def _class_texture(
    label: int,
    spec: SyntheticSpec,
    rng: np.random.Generator,
    proto_seed: int,
) -> np.ndarray:
    """Class-conditional oriented grating with a random per-sample phase.

    The smooth prototype fields alone carry only *global* layout
    evidence, which shallow wide-kernel + FC networks exploit better
    than deep 3×3 stacks — inverting the paper's depth ordering.  Real
    CIFAR classes also differ in local texture statistics; this grating
    restores that: its orientation and frequency are class-determined
    (deterministic given the prototype seed) while its phase is random
    per sample, so the evidence is translation-distributed and favours
    convolutional feature extraction over memorization.
    """
    class_rng = np.random.default_rng(proto_seed + 7919 * (label + 1))
    theta = class_rng.uniform(0, np.pi)
    freq = class_rng.uniform(2.5, 5.5)
    channel_weights = class_rng.uniform(0.5, 1.0, size=spec.channels)
    ys, xs = np.meshgrid(
        np.linspace(0, 1, spec.height), np.linspace(0, 1, spec.width), indexing="ij"
    )
    phase = rng.uniform(0, 2 * np.pi)
    wave = np.sin(
        2 * np.pi * freq * (xs * np.cos(theta) + ys * np.sin(theta)) + phase
    )
    return (channel_weights[:, None, None] * wave).astype(np.float32)


def _random_affine(rng: np.random.Generator, warp: float) -> np.ndarray:
    """Small random inverse affine: rotation, scale, shear, shift."""
    angle = rng.uniform(-0.15, 0.15) * warp
    scale = 1.0 + rng.uniform(-0.08, 0.08) * warp
    shear = rng.uniform(-0.08, 0.08) * warp
    dy = rng.uniform(-1.5, 1.5) * warp
    dx = rng.uniform(-1.5, 1.5) * warp
    cos, sin = np.cos(angle), np.sin(angle)
    rot = np.array([[cos, sin], [-sin, cos]]) / scale
    shear_m = np.array([[1.0, shear], [0.0, 1.0]])
    m = rot @ shear_m
    return np.array(
        [[m[0, 0], m[0, 1], -dy], [m[1, 0], m[1, 1], -dx]], dtype=np.float64
    )


def generate(
    spec: SyntheticSpec,
    num_samples: int,
    seed: int = 0,
    prototype_seed: Optional[int] = None,
) -> ArrayDataset:
    """Sample a dataset from the spec's class-conditional distribution.

    ``prototype_seed`` pins the class structure; different ``seed`` values
    then give i.i.d. draws (use one seed for train, another for test).
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if prototype_seed is not None:
        proto_seed = prototype_seed
    else:
        # A *stable* hash of the dataset name: Python's builtin hash() is
        # salted per process and would silently make every run a
        # different dataset.
        proto_seed = zlib.crc32(spec.name.encode("utf-8")) % (2**31)
    prototypes = class_prototypes(spec, seed=proto_seed)
    rng = np.random.default_rng(seed)

    # Global distractor field shared by all classes (difficulty knob).
    distractor = _bilinear_upsample(
        np.random.default_rng(proto_seed + 1).standard_normal(
            (spec.channels, spec.grid, spec.grid)
        ),
        spec.height,
        spec.width,
    ).astype(np.float32)

    labels = rng.integers(0, spec.num_classes, size=num_samples)
    images = np.empty((num_samples,) + spec.image_shape, dtype=np.float32)
    for i, label in enumerate(labels):
        proto_idx = rng.integers(0, spec.prototypes_per_class)
        img = prototypes[label, proto_idx]
        if spec.prototype_mix > 0:
            img = (1 - spec.prototype_mix) * img + spec.prototype_mix * distractor
        img = affine_warp(img, _random_affine(rng, spec.warp))
        if spec.texture > 0:
            img = img + spec.texture * _class_texture(int(label), spec, rng, proto_seed)
        img = img * spec.contrast
        img = img + rng.normal(0.0, spec.noise, size=img.shape).astype(np.float32)
        images[i] = img

    # Standardize to zero mean / unit variance, as the paper's pipelines do.
    images -= images.mean()
    images /= images.std() + 1e-8
    return ArrayDataset(images, labels)


def make_dataset(
    name: str, num_train: int, num_test: int, seed: int = 0
) -> tuple[ArrayDataset, ArrayDataset]:
    """Build (train, test) splits of a named synthetic dataset."""
    if name not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(SPECS)}")
    spec = SPECS[name]
    train = generate(spec, num_train, seed=seed * 2 + 1)
    test = generate(spec, num_test, seed=seed * 2 + 2)
    return train, test
