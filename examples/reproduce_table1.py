#!/usr/bin/env python
"""Reproduce the paper's Table I (and the Figure 5 curves) at full scale.

Joint-trains all 16 (network × dataset) combinations, calibrates each
exit threshold, and prints the measured Table I next to the paper's
values, followed by the binary-branch training curves.

Run:  python examples/reproduce_table1.py --scale quick      (~5 min)
      python examples/reproduce_table1.py --scale standard   (~1 h)
      python examples/reproduce_table1.py --networks lenet alexnet
"""

from __future__ import annotations

import argparse

from repro.data.synthetic import DATASET_NAMES
from repro.experiments import SCALES, run_table1
from repro.experiments.reporting import render_series
from repro.models import MODEL_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--networks", nargs="+", default=list(MODEL_NAMES))
    parser.add_argument("--datasets", nargs="+", default=list(DATASET_NAMES))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    result = run_table1(
        networks=args.networks,
        datasets=args.datasets,
        scale=SCALES[args.scale],
        seed=args.seed,
        verbose=True,
    )

    print()
    print(result.render())
    print()
    for line in result.shape_checks():
        print(line)

    print("\nFigure 5 — binary-branch training curves (loss per epoch):")
    for (network, dataset), cell in result.cells.items():
        print(
            render_series(
                f"  {network}/{dataset}", cell.history.series("loss_binary"), 3
            )
        )


if __name__ == "__main__":
    main()
