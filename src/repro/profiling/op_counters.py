"""Lightweight per-op runtime counters for the browser inference engine.

The latency *model* (:mod:`repro.runtime.latency`) prices plans
analytically; these counters measure what the engine actually did —
calls, samples, wall time, and bytes run through the popcount unit — so
kernel work can be attributed per layer and benchmark trajectories
(``BENCH_*.json``) have a stable schema to draw from.  Recording is a
handful of float adds per op call, cheap enough to stay always-on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Accumulated runtime statistics for one compiled op."""

    index: int
    kind: str
    calls: int = 0
    samples: int = 0
    wall_ms: float = 0.0
    bytes_popcounted: int = 0

    def record(self, samples: int, wall_ms: float, bytes_popcounted: int = 0) -> None:
        self.calls += 1
        self.samples += samples
        self.wall_ms += wall_ms
        self.bytes_popcounted += bytes_popcounted

    def reset(self) -> None:
        self.calls = 0
        self.samples = 0
        self.wall_ms = 0.0
        self.bytes_popcounted = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "calls": self.calls,
            "samples": self.samples,
            "wall_ms": self.wall_ms,
            "bytes_popcounted": self.bytes_popcounted,
        }


@dataclass
class ModelCounters:
    """Per-op counters for one engine instance, in execution order."""

    ops: list[OpCounter] = field(default_factory=list)

    @classmethod
    def for_kinds(cls, kinds: list[str]) -> "ModelCounters":
        return cls(ops=[OpCounter(index=i, kind=k) for i, k in enumerate(kinds)])

    def reset(self) -> None:
        for op in self.ops:
            op.reset()

    @property
    def total_calls(self) -> int:
        return sum(op.calls for op in self.ops)

    @property
    def total_wall_ms(self) -> float:
        return sum(op.wall_ms for op in self.ops)

    @property
    def total_bytes_popcounted(self) -> int:
        return sum(op.bytes_popcounted for op in self.ops)

    def summary(self) -> list[dict[str, object]]:
        """JSON-ready per-op rows (the ``BENCH_*.json`` schema)."""
        return [op.as_dict() for op in self.ops]


@dataclass
class FaultCounters:
    """Miss-path transport failure/recovery statistics for one deployment.

    The session layer bumps these as collaborative frames travel the
    (possibly faulty) link: every attempt is a ``frames_sent``; failures
    split by cause; ``retries`` counts re-sends after a failure; and
    ``fallbacks`` counts samples/chunks that exhausted the retry policy
    and were answered by the local binary branch instead.
    """

    frames_sent: int = 0
    frames_dropped: int = 0
    frames_timed_out: int = 0
    frames_corrupted: int = 0
    frames_duplicated: int = 0
    edge_errors: int = 0
    overloads: int = 0
    replies_rejected: int = 0
    retries: int = 0
    fallbacks: int = 0

    @property
    def failures(self) -> int:
        """Attempts that did not yield a valid reply."""
        return (
            self.frames_dropped
            + self.frames_timed_out
            + self.edge_errors
            + self.replies_rejected
        )

    def reset(self) -> None:
        self.frames_sent = 0
        self.frames_dropped = 0
        self.frames_timed_out = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.edge_errors = 0
        self.overloads = 0
        self.replies_rejected = 0
        self.retries = 0
        self.fallbacks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_dropped": self.frames_dropped,
            "frames_timed_out": self.frames_timed_out,
            "frames_corrupted": self.frames_corrupted,
            "frames_duplicated": self.frames_duplicated,
            "edge_errors": self.edge_errors,
            "overloads": self.overloads,
            "replies_rejected": self.replies_rejected,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
        }


@dataclass
class SchedulerCounters:
    """Aggregate telemetry of one :class:`~repro.runtime.scheduler.EdgeScheduler`.

    Request/sample counters split admission outcomes (accepted vs shed
    vs malformed); batch counters describe what the trunk actually
    executed (one entry per trunk pass, so ``batch_size_hist`` is the
    dynamic-batching histogram); ``queue_wait_ms`` accumulates simulated
    per-sample waiting (window + head-of-line + edge busy).  Per-tenant
    rows keep the fairness policy observable.
    """

    submitted_requests: int = 0
    accepted_requests: int = 0
    shed_requests: int = 0
    malformed_requests: int = 0
    submitted_samples: int = 0
    accepted_samples: int = 0
    shed_samples: int = 0
    samples_served: int = 0
    batches: int = 0
    busy_ms: float = 0.0
    queue_wait_ms: float = 0.0
    max_queue_depth: int = 0
    batch_size_hist: dict[int, int] = field(default_factory=dict)
    per_tenant: dict[int, dict[str, int]] = field(default_factory=dict)

    def tenant(self, tenant_id: int) -> dict[str, int]:
        """The (created-on-demand) counter row for one session/tenant."""
        return self.per_tenant.setdefault(
            int(tenant_id), {"submitted": 0, "accepted": 0, "shed": 0, "served": 0}
        )

    def record_batch(self, batch_size: int, exec_ms: float, waits_ms: float) -> None:
        self.batches += 1
        self.samples_served += batch_size
        self.busy_ms += exec_ms
        self.queue_wait_ms += waits_ms
        self.batch_size_hist[batch_size] = self.batch_size_hist.get(batch_size, 0) + 1

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted samples refused with a 503."""
        if self.submitted_samples == 0:
            return 0.0
        return self.shed_samples / self.submitted_samples

    @property
    def mean_batch_size(self) -> float:
        return self.samples_served / self.batches if self.batches else 0.0

    @property
    def mean_queue_wait_ms(self) -> float:
        if self.samples_served == 0:
            return 0.0
        return self.queue_wait_ms / self.samples_served

    @property
    def throughput_rps(self) -> float:
        """Samples per second of edge busy time (serving efficiency)."""
        if self.busy_ms <= 0:
            return 0.0
        return self.samples_served / self.busy_ms * 1e3

    def reset(self) -> None:
        self.submitted_requests = 0
        self.accepted_requests = 0
        self.shed_requests = 0
        self.malformed_requests = 0
        self.submitted_samples = 0
        self.accepted_samples = 0
        self.shed_samples = 0
        self.samples_served = 0
        self.batches = 0
        self.busy_ms = 0.0
        self.queue_wait_ms = 0.0
        self.max_queue_depth = 0
        self.batch_size_hist = {}
        self.per_tenant = {}

    def as_dict(self) -> dict[str, object]:
        return {
            "submitted_requests": self.submitted_requests,
            "accepted_requests": self.accepted_requests,
            "shed_requests": self.shed_requests,
            "malformed_requests": self.malformed_requests,
            "submitted_samples": self.submitted_samples,
            "accepted_samples": self.accepted_samples,
            "shed_samples": self.shed_samples,
            "samples_served": self.samples_served,
            "batches": self.batches,
            "busy_ms": self.busy_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "max_queue_depth": self.max_queue_depth,
            "shed_rate": self.shed_rate,
            "mean_batch_size": self.mean_batch_size,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "throughput_rps": self.throughput_rps,
            "batch_size_hist": {str(k): v for k, v in sorted(self.batch_size_hist.items())},
            "per_tenant": {str(k): dict(v) for k, v in sorted(self.per_tenant.items())},
        }
