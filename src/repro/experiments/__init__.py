"""Experiment harnesses: one per table/figure of the paper's evaluation.

| Paper artifact | Harness |
|---|---|
| Table I        | :func:`repro.experiments.table1.run_table1` |
| Figure 4       | :func:`repro.experiments.structure.run_figure4` |
| Figure 5       | :func:`repro.experiments.curves.run_figure5` |
| Figure 6       | :func:`repro.experiments.latency.run_figure6` |
| Table II/III   | :func:`repro.experiments.latency.run_latency_comparison` |
| Figure 7       | :func:`repro.experiments.latency.run_figure7` |
| Figure 10      | :func:`repro.experiments.webar_exp.run_figure10` |
| §IV-D ablations| :mod:`repro.experiments.ablations` |
| §IV-D.1 instability | :func:`repro.experiments.faults_exp.run_degradation` |
| §I concurrency | :func:`repro.experiments.scale.run_concurrency` |
| §I fleet scale | :mod:`repro.experiments.fleet` |
| §III-C closed loop | :mod:`repro.experiments.adaptive_tau` |
"""

from .adaptive_tau import (
    AdaptiveTauResult,
    OverloadStream,
    TauDrillResult,
    adaptive_tau_study,
    build_overload_stream,
    congested_edge_model,
    default_drill_control,
    run_adaptive_tau,
    run_tau_drill,
)
from .ablations import (
    BranchCountResult,
    BranchLocationResult,
    DeviceSensitivityResult,
    run_branch_count,
    run_branch_location,
    run_device_sensitivity,
)
from .curves import Figure5Result, run_figure5
from .faults_exp import (
    SWEEP_RETRY_POLICY,
    DegradationPoint,
    DegradationResult,
    run_degradation,
)
from .fleet import (
    CapacityPlanRow,
    FleetCapacityPoint,
    FleetCapacityResult,
    FleetPartitionResult,
    FleetSloResult,
    capacity_planning_table,
    render_capacity_table,
    run_fleet_capacity,
    run_fleet_partition,
    run_fleet_slo,
)
from .latency import (
    DEFAULT_EXIT_RATES,
    Figure6Result,
    Figure7Result,
    LatencyComparison,
    build_network_assets,
    build_plans,
    run_figure6,
    run_figure7,
    run_latency_comparison,
)
from .paper_values import (
    PAPER_CLAIMS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    Table1Row,
    paper_table1_row,
)
from .reporting import render_series, render_table, shape_check
from .scale import (
    FULL,
    QUICK,
    SCALES,
    STANDARD,
    ConcurrencyPoint,
    ConcurrencyResult,
    ConcurrencySweepConfig,
    ExperimentScale,
    WorkerScalingConfig,
    WorkerScalingPoint,
    WorkerScalingResult,
    run_concurrency,
    run_worker_scaling,
)
from .structure import Figure4Result, StructurePoint, run_figure4
from .table1 import Table1Cell, Table1Result, run_table1, run_table1_cell
from .webar_exp import Figure10Result, run_figure10

__all__ = [
    "AdaptiveTauResult",
    "BranchCountResult",
    "BranchLocationResult",
    "CapacityPlanRow",
    "ConcurrencyPoint",
    "ConcurrencyResult",
    "ConcurrencySweepConfig",
    "DEFAULT_EXIT_RATES",
    "DegradationPoint",
    "DegradationResult",
    "DeviceSensitivityResult",
    "ExperimentScale",
    "FULL",
    "Figure10Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Figure7Result",
    "FleetCapacityPoint",
    "FleetCapacityResult",
    "FleetPartitionResult",
    "FleetSloResult",
    "LatencyComparison",
    "OverloadStream",
    "PAPER_CLAIMS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "QUICK",
    "SCALES",
    "STANDARD",
    "SWEEP_RETRY_POLICY",
    "StructurePoint",
    "Table1Cell",
    "Table1Result",
    "Table1Row",
    "TauDrillResult",
    "WorkerScalingConfig",
    "WorkerScalingPoint",
    "WorkerScalingResult",
    "adaptive_tau_study",
    "build_network_assets",
    "build_overload_stream",
    "build_plans",
    "capacity_planning_table",
    "congested_edge_model",
    "default_drill_control",
    "paper_table1_row",
    "render_capacity_table",
    "render_series",
    "render_table",
    "run_adaptive_tau",
    "run_branch_count",
    "run_branch_location",
    "run_concurrency",
    "run_degradation",
    "run_device_sensitivity",
    "run_figure10",
    "run_fleet_capacity",
    "run_fleet_partition",
    "run_fleet_slo",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_latency_comparison",
    "run_table1",
    "run_table1_cell",
    "run_tau_drill",
    "run_worker_scaling",
    "shape_check",
]
