"""Profiling: per-layer FLOPs, parameter bytes, and activation sizes."""

from .layer_stats import (
    FLOAT_BYTES,
    LayerProfile,
    NetworkProfile,
    binary_param_bytes,
    model_size_bytes,
    model_size_mb,
    profile_layer,
)
from .op_counters import (
    FaultCounters,
    ModelCounters,
    OpCounter,
    SchedulerCounters,
    counters_scope,
)
from .tracer import TracedLayer, trace

__all__ = [
    "FLOAT_BYTES",
    "FaultCounters",
    "LayerProfile",
    "ModelCounters",
    "NetworkProfile",
    "OpCounter",
    "SchedulerCounters",
    "TracedLayer",
    "binary_param_bytes",
    "counters_scope",
    "model_size_bytes",
    "model_size_mb",
    "profile_layer",
    "trace",
]
