"""Parallel edge benchmark → ``BENCH_parallel.json``.

Measures the worker-pool scaling of the shared edge trunk via
:func:`repro.experiments.scale.run_worker_scaling`: a saturating burst
of miss-path batch frames served at 1/2/4 workers, reporting makespan,
throughput, speedup over serial, the M/M/c capacity cross-check
(measured throughput over ``c / service_time`` — 1.0 when the request
count divides evenly), and the bit-identity flag the determinism story
promises.  The acceptance bar recorded here: 4-worker trunk throughput
≥ 2.5× single-worker with bit-identical predictions.

A ``worker_scaling_wall`` section repeats the sweep in measured
wall-clock mode (``mode="wall"``): now that the engine is thread-safe
and the trunk exec lock is gone, the flush really runs ``min(c,
host_cores)`` trunks concurrently, and the section records the best
timed makespan per pool size with the core-clamped M/M/c capacity
cross-check.  The wall speedup floor (≥ 2× at 4 workers) only applies
when the host has ≥ 2 cores — a 1-core box cannot beat one core's
capacity no matter how many worker threads it runs, and the record says
so explicitly instead of failing on physics.

A further section times the intra-op ``num_threads`` knob of the
blocked XNOR-popcount kernels through a real branch-engine forward
(wall clock via :mod:`repro.observability.clock`) and checks the
outputs are byte-identical at every thread count.

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/bench_parallel.py

``REPRO_BENCH_WALL=1`` (the ``make bench-par-wall`` target) raises the
wall section's repeat count for a steadier measurement.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_parallel.json"

WORKERS = (1, 2, 4)
REQUESTS = 16
BATCH_SIZE = 4
THREAD_COUNTS = (1, 2, 4)
FORWARD_REPEATS = 5
SEED = 0
SPEEDUP_FLOOR = 2.5
#: Acceptance floor for *measured* wall-clock speedup at max workers —
#: applies only on hosts with at least 2 cores.
WALL_SPEEDUP_FLOOR = 2.0
WALL_REPEATS = 7 if os.environ.get("REPRO_BENCH_WALL") else 3


def _build_system():
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset

    train, test = make_dataset("mnist", 600, 200, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(
            epochs=4, batch_size=64, lr_main=2e-3, seed=0
        ),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)
    return system, test


def bench_worker_scaling(system, test) -> dict:
    from repro.experiments import WorkerScalingConfig, run_worker_scaling

    result = run_worker_scaling(
        system,
        test.images[: REQUESTS * BATCH_SIZE],
        config=WorkerScalingConfig(
            workers=WORKERS, requests=REQUESTS, batch_size=BATCH_SIZE
        ),
    )
    quad = result.point(max(WORKERS))
    record = result.as_dict()
    record["headline"] = {
        "workers": quad.workers,
        "speedup_vs_serial": quad.speedup_vs_serial,
        "bit_identical": quad.bit_identical,
        "meets_floor": quad.speedup_vs_serial >= SPEEDUP_FLOOR
        and quad.bit_identical,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    return record


def bench_worker_scaling_wall(system, test) -> dict:
    """The measured wall-clock sweep — real concurrent trunks, no lock."""
    from repro.experiments import WorkerScalingConfig, run_worker_scaling

    result = run_worker_scaling(
        system,
        test.images[: REQUESTS * BATCH_SIZE],
        config=WorkerScalingConfig(
            workers=WORKERS,
            requests=REQUESTS,
            batch_size=BATCH_SIZE,
            mode="wall",
            wall_repeats=WALL_REPEATS,
        ),
    )
    quad = result.point(max(WORKERS))
    floor_applies = result.host_cores >= 2
    record = result.as_dict()
    record["headline"] = {
        "workers": quad.workers,
        "host_cores": result.host_cores,
        "effective_workers": quad.effective_workers,
        "wall_speedup_vs_serial": quad.wall_speedup_vs_serial,
        "wall_capacity_ratio": quad.wall_capacity_ratio,
        "bit_identical": quad.bit_identical,
        "speedup_floor": WALL_SPEEDUP_FLOOR,
        "floor_applies": floor_applies,
        "meets_floor": (
            quad.bit_identical
            and (
                not floor_applies
                or (quad.wall_speedup_vs_serial or 0.0) >= WALL_SPEEDUP_FLOOR
            )
        ),
        "note": (
            "floor enforced"
            if floor_applies
            else "single-core host: wall parallelism is physically capped at "
            "1x; floor not applicable, cross-check is the core-clamped "
            "capacity ratio"
        ),
    }
    return record


def bench_intra_op_threads(system, test) -> dict:
    """Wall-time the branch engine's forward across num_threads values.

    On a single-core host the wall times will not scale; the section
    exists to record that the knob never changes a bit of output and to
    document per-thread-count wall cost where cores are available.
    """
    import numpy as np

    from repro.observability.clock import now_s
    from repro.runtime import build_lcrs_assets
    from repro.wasm import WasmModel

    assets = build_lcrs_assets(system.model)
    images = test.images[:32].astype(np.float32)
    stem = WasmModel.load(assets.stem_payload)
    features = stem.forward(images)

    baseline = None
    points = []
    for threads in THREAD_COUNTS:
        engine = WasmModel.load(assets.branch_payload, num_threads=threads)
        out = engine.forward(features)  # warm caches before timing
        best = float("inf")
        for _ in range(FORWARD_REPEATS):
            t0 = now_s()
            out = engine.forward(features)
            best = min(best, now_s() - t0)
        if baseline is None:
            baseline = out
        points.append(
            {
                "num_threads": threads,
                "forward_wall_ms": best * 1e3,
                "bit_identical": out.tobytes() == baseline.tobytes(),
            }
        )
    return {"samples": len(images), "points": points}


def main() -> None:
    system, test = _build_system()
    scaling = bench_worker_scaling(system, test)
    wall = bench_worker_scaling_wall(system, test)
    record = {
        "benchmark": "parallel",
        "config": {
            "workers": list(WORKERS),
            "requests": REQUESTS,
            "batch_size": BATCH_SIZE,
            "thread_counts": list(THREAD_COUNTS),
            "wall_repeats": WALL_REPEATS,
            "seed": SEED,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": {
            "worker_scaling": scaling,
            "worker_scaling_wall": wall,
            "intra_op_threads": bench_intra_op_threads(system, test),
        },
    }
    OUTPUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    headline = scaling["headline"]
    wall_headline = wall["headline"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"headline: {headline['speedup_vs_serial']:.2f}x trunk throughput at "
        f"{headline['workers']} workers "
        f"(bit_identical={headline['bit_identical']}, "
        f"floor {SPEEDUP_FLOOR}x met={headline['meets_floor']})"
    )
    print(
        f"wall: {wall_headline['wall_speedup_vs_serial']:.2f}x measured at "
        f"{wall_headline['workers']} workers on {wall_headline['host_cores']} "
        f"core(s) (capacity_ratio="
        f"{wall_headline['wall_capacity_ratio']:.2f}, "
        f"{wall_headline['note']})"
    )
    if not headline["meets_floor"]:
        raise SystemExit("parallel speedup floor not met")
    if not wall_headline["meets_floor"]:
        raise SystemExit("wall-clock parallel speedup floor not met")


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
