"""Edge concurrency ablation — the §I service-provider cost argument.

"The computing cost of high concurrent requests is unacceptable" for
edge-only offloading; LCRS's exit rate divides the edge's arrival rate.
The M/M/c model quantifies it: sustainable user population scales by
1/(1−exit_rate).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import DEFAULT_EXIT_RATES, build_network_assets
from repro.experiments.reporting import render_table
from repro.runtime import edge_load_curve, max_sustainable_users


def _run_load_study():
    results = {}
    for network in ("lenet", "alexnet", "resnet18", "vgg16"):
        trunk = build_network_assets(network).lcrs.trunk_profile
        exit_rate = DEFAULT_EXIT_RATES[network]
        results[network] = {
            "exit_rate": exit_rate,
            "edge_only_users": max_sustainable_users(trunk, 0.0),
            "lcrs_users": max_sustainable_users(trunk, exit_rate),
            "curve_lcrs": edge_load_curve(trunk, exit_rate, [100, 1000, 5000]),
            "curve_edge": edge_load_curve(trunk, 0.0, [100, 1000, 5000]),
        }
    return results


def test_edge_load_ablation(benchmark, announce):
    results = benchmark.pedantic(_run_load_study, rounds=1, iterations=1)
    announce(
        render_table(
            ["network", "exit%", "edge-only max users", "LCRS max users", "gain"],
            [
                [
                    net,
                    f"{100 * r['exit_rate']:.0f}",
                    f"{r['edge_only_users']:.0f}",
                    f"{r['lcrs_users']:.0f}",
                    f"{r['lcrs_users'] / r['edge_only_users']:.1f}x",
                ]
                for net, r in results.items()
            ],
            title="edge capacity at 80% utilization, 1 scan/s per user",
        )
    )

    for net, r in results.items():
        expected_gain = 1.0 / (1.0 - r["exit_rate"])
        assert r["lcrs_users"] / r["edge_only_users"] == pytest.approx(
            expected_gain, rel=1e-6
        ), net
        # Under load, LCRS stays stable longer than edge-only.
        for lcrs_point, edge_point in zip(r["curve_lcrs"], r["curve_edge"]):
            assert lcrs_point.utilization <= edge_point.utilization


def test_benchmark_erlang_c(benchmark):
    from repro.runtime import QueueModel

    queue = QueueModel(workers=12, service_time_s=0.02)
    benchmark(lambda: [queue.mean_response_s(lam) for lam in range(1, 400, 10)])
