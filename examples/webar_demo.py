#!/usr/bin/env python
"""Web AR case studies: scanning China Mobile logos and FenJiu bottles.

Reproduces §V-C's application scenario: synthetic logo datasets expanded
with the paper's augmentation recipe, a jointly-trained composite network
deployed across browser and edge, and full scan→recognize→render
sessions with the one-second latency budget.

Run:  python examples/webar_demo.py [--network resnet18] [--frames 60]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.training import JointTrainingConfig
from repro.webar import build_case


def run_case(case_name: str, network: str, frames: int, seed: int) -> None:
    print(f"== {case_name} case ({network}) ==")
    case = build_case(
        case_name,
        network=network,
        training_config=JointTrainingConfig(epochs=6, batch_size=32, seed=seed),
        seed=seed,
    )
    main_acc, binary_acc = case.system.trainer.evaluate(case.test)
    print(
        f"trained: main={main_acc:.3f} binary={binary_acc:.3f} "
        f"tau={case.system.threshold:.4f} "
        f"bundle={case.deployment.bundle_bytes / 1024:.1f}KB"
    )

    report = case.run_session(num_frames=frames, seed=seed)
    labels = case.session_labels(num_frames=frames, seed=seed)
    local, remote = report.split_by_exit()
    print(
        f"session: {frames} scans, accuracy={report.accuracy(labels):.3f}, "
        f"exit_rate={len(local) / frames:.2f}"
    )
    print(
        f"  recognition: mean={report.mean_recognition_ms:.1f}ms "
        f"(LCRS-B×{len(local)}, LCRS-M×{len(remote)})"
    )
    if local:
        lcrs_b = np.mean([i.recognition_ms for i in local])
        print(f"  LCRS-B (browser exit): {lcrs_b:.1f}ms")
    if remote:
        lcrs_m = np.mean([i.recognition_ms for i in remote])
        print(f"  LCRS-M (edge collab):  {lcrs_m:.1f}ms")
    print(
        f"  full AR loop: mean={report.mean_total_ms:.1f}ms, "
        f"{100 * report.under_one_second_rate:.0f}% within the 1s budget"
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="resnet18", help="main-branch network")
    parser.add_argument("--frames", type=int, default=60, help="scans per session")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    for case_name in ("china_mobile", "fenjiu"):
        run_case(case_name, args.network, args.frames, args.seed)


if __name__ == "__main__":
    main()
