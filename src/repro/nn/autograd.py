"""Reverse-mode automatic differentiation on numpy arrays.

This module is the numerical substrate of the reproduction: a small,
dependency-free autograd engine in the style of PyTorch's eager tensors.
``Tensor`` wraps a ``numpy.ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` walks the recorded graph in reverse
topological order and accumulates gradients into every tensor created with
``requires_grad=True``.

Only the operations needed by the LCRS networks are implemented, but they
are implemented completely (broadcasting-aware, with correct gradients)
so the layer library in :mod:`repro.nn.layers` can be written as ordinary
compositions of tensor ops.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int]


class _GradMode(threading.local):
    """Per-thread grad-recording flag.

    Graph recording is a property of the *calling thread's* computation,
    not of the process: one edge worker running a ``no_grad`` trunk pass
    must not stop a concurrent training thread from recording its tape.
    ``threading.local`` gives every thread its own ``enabled`` slot; the
    class attribute is the default a fresh thread sees before it ever
    touches the flag.
    """

    enabled = True


_GRAD_MODE = _GradMode()


class no_grad:
    """Context manager that disables graph recording on this thread.

    Used during evaluation and inside the binary-weight update step of
    Algorithm 1, where the full-precision master weights are mutated
    outside the differentiated graph.  Scopes nest (each ``__exit__``
    restores the flag its ``__enter__`` saw, exception or not) and are
    thread-local: entering ``no_grad`` on one thread never changes what
    another thread records.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GRAD_MODE.enabled
        _GRAD_MODE.enabled = False
        return self

    def __exit__(self, *exc: object) -> None:
        _GRAD_MODE.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether this thread's operations are being recorded."""
    return _GRAD_MODE.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype: np.dtype = np.float32) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with an optional gradient and autograd history.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless it already is a
        floating numpy array.
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        recording = _GRAD_MODE.enabled
        self.requires_grad = bool(requires_grad) and recording
        self._parents: tuple[Tensor, ...] = tuple(_parents) if recording else ()
        self._backward = _backward if recording else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_MODE.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = grad.astype(self.data.dtype, copy=False)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode AD from this tensor.

        ``grad`` seeds the sweep and defaults to ones.  Gradients
        accumulate into ``.grad`` of every reachable tensor that has
        ``requires_grad=True``.  Implemented by the module-level
        :func:`backward`; see there for the traversal contract.
        """
        backward(self, grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._receive(_unbroadcast(grad, self.shape))
            other_t._receive(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._receive(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._receive(_unbroadcast(grad, self.shape))
            other_t._receive(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return Tensor(_as_array(other)) - self

    def __mul__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._receive(_unbroadcast(grad * other_t.data, self.shape))
            other_t._receive(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._receive(_unbroadcast(grad / other_t.data, self.shape))
            other_t._receive(
                _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._receive(grad @ other.data.swapaxes(-1, -2))
            other._receive(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes_t)
        data = self.data.transpose(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the first (batch) dimension."""
        return self.reshape(self.shape[0], -1)

    def __getitem__(self, index: object) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._receive(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions & nonlinearities
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._receive(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, tuple]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._receive(mask * g)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * mask)

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * mask)

        return Tensor._make(data, (self,), backward)

    def sign_ste(self, clip: float = 1.0) -> "Tensor":
        """Binarize with the straight-through estimator (paper Eq. 5).

        Forward: ``sign(x)`` with sign(0) mapped to +1 (a binary code must
        not contain zeros).  Backward: the gradient passes through
        unchanged wherever ``|x| <= clip`` and is zeroed elsewhere —
        exactly :math:`\\partial\\,\\mathrm{sign}/\\partial x = 1_{|x|\\le 1}`.
        """
        data = np.where(self.data >= 0, 1.0, -1.0).astype(self.data.dtype)
        mask = np.abs(self.data) <= clip

        def backward(grad: np.ndarray) -> None:
            self._receive(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Gradient plumbing
    # ------------------------------------------------------------------
    def _receive(self, grad: np.ndarray) -> None:
        """Accumulate an upstream gradient contribution.

        Backward closures call this on their parents; during the backward
        sweep the engine drains accumulated contributions in topological
        order so each node's closure fires exactly once with the full
        gradient.
        """
        if not self.requires_grad:
            return
        self._accumulate(grad)


def _toposort(root: Tensor) -> list[Tensor]:
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def backward(root: Tensor, grad: Optional[np.ndarray] = None) -> None:
    """Functional entry point for the backward pass.

    Unlike the method on :class:`Tensor` (kept for API familiarity), this
    version drives closures strictly in reverse topological order using the
    gradients accumulated so far in each node's ``.grad``.  All layer code
    in this repository routes through here via ``Tensor.backward``.
    """
    if grad is None:
        grad = np.ones_like(root.data)
    root._accumulate(np.asarray(grad, dtype=root.data.dtype))
    for node in reversed(_toposort(root)):
        if node._backward is not None and node.grad is not None:
            node._backward(node.grad)


def tensor(data: Arrayish, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(tuple(shape), dtype=np.float32), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(tuple(shape), dtype=np.float32), requires_grad=requires_grad)


def randn(
    shape: Iterable[int],
    scale: float = 1.0,
    requires_grad: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    rng = rng or np.random.default_rng()
    data = (rng.standard_normal(tuple(shape)) * scale).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index: list[object] = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._receive(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    p = padding
    data = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad: np.ndarray) -> None:
        x._receive(grad[:, :, p:-p, p:-p])

    return Tensor._make(data, (x,), backward)
