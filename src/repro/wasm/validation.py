"""Cross-validation of the browser engine against the training framework.

Mirrors the paper's §IV-C: "We also validate the correctness of our
implementation by comparing the outputs to the inference of Pytorch."
Here the reference is :mod:`repro.nn`; the device under test is the
bit-packed interpreter executing the serialized bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn.autograd import Tensor, no_grad
from ..nn.module import Module
from .interpreter import WasmModel
from .model_format import serialize_browser_bundle


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one framework-vs-interpreter comparison."""

    max_abs_error: float
    mean_abs_error: float
    argmax_agreement: float
    num_samples: int
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.max_abs_error <= self.tolerance


def validate_bundle(
    bundle: Module,
    input_shape: tuple[int, int, int],
    num_samples: int = 16,
    tolerance: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
) -> ValidationReport:
    """Serialize ``bundle``, reload it, and compare outputs on random inputs.

    The comparison runs the framework in eval mode (the interpreter has
    no training mode by construction).  ``argmax_agreement`` is the rate
    at which both engines pick the same class — the metric that actually
    matters for Algorithm 2's exit decisions.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    payload = serialize_browser_bundle(bundle, input_shape)
    engine = WasmModel.load(payload)

    x = rng.standard_normal((num_samples,) + tuple(input_shape)).astype(np.float32)

    was_training = bundle.training
    bundle.eval()
    with no_grad():
        reference = bundle(Tensor(x)).data
    bundle.train(was_training)

    actual = engine.forward(x)
    if reference.shape != actual.shape:
        raise AssertionError(
            f"shape mismatch: framework {reference.shape} vs interpreter {actual.shape}"
        )

    abs_err = np.abs(reference - actual)
    agreement = float((reference.argmax(axis=1) == actual.argmax(axis=1)).mean())
    return ValidationReport(
        max_abs_error=float(abs_err.max()),
        mean_abs_error=float(abs_err.mean()),
        argmax_agreement=agreement,
        num_samples=num_samples,
        tolerance=tolerance,
    )
