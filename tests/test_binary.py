"""Unit tests for the XNOR binary layers (the paper's Eq. 4-6 machinery)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.autograd import Tensor
from repro.nn.binary import (
    BinaryConv2d,
    BinaryLinear,
    binarize,
    clamp_master_weights,
    input_scaling_factors,
)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBinarize:
    def test_sign_values(self, rng):
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        sign, alpha = binarize(w)
        assert set(np.unique(sign)) <= {-1.0, 1.0}

    def test_alpha_is_l1_mean_per_filter(self, rng):
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        _, alpha = binarize(w)
        expected = np.abs(w).mean(axis=(1, 2, 3))
        np.testing.assert_allclose(alpha, expected, rtol=1e-6)

    def test_reconstruction_is_l2_optimal_scale(self, rng):
        # alpha*sign(W) is the best rank-free binary approximation; any
        # other scale must have larger L2 error.
        w = rng.standard_normal((1, 8)).astype(np.float64)
        sign, alpha = binarize(w)
        best = np.linalg.norm(w - alpha[:, None] * sign)
        worse1 = np.linalg.norm(w - (alpha[:, None] * 1.3) * sign)
        worse2 = np.linalg.norm(w - (alpha[:, None] * 0.7) * sign)
        assert best <= worse1 and best <= worse2

    def test_linear_weight_shape(self, rng):
        w = rng.standard_normal((5, 10)).astype(np.float32)
        sign, alpha = binarize(w)
        assert sign.shape == (5, 10)
        assert alpha.shape == (5,)


class TestInputScalingFactors:
    def test_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        k = input_scaling_factors(x, kernel=3, stride=1, padding=1)
        assert k.shape == (2, 1, 8, 8)

    def test_constant_input_gives_constant_k_interior(self):
        x = np.full((1, 2, 6, 6), 2.0, dtype=np.float32)
        k = input_scaling_factors(x, kernel=3, stride=1, padding=0)
        np.testing.assert_allclose(k, 2.0, rtol=1e-6)

    def test_k_is_mean_abs_over_window(self):
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        x[0, 0, 1, 1] = 9.0
        k = input_scaling_factors(x, kernel=3, stride=1, padding=0)
        np.testing.assert_allclose(k[0, 0, 0, 0], 1.0)


class TestBinaryConv2d:
    def test_forward_matches_eq4_composition(self, rng):
        """The layer must compute (sign(I) ⊛ sign(W)) ⊙ K · α exactly."""
        layer = BinaryConv2d(2, 3, 3, padding=1, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32))
        out = layer(x).data

        sign_w, alpha = layer.binary_weights()
        k = input_scaling_factors(x.data, 3, 1, 1)
        xs = np.where(x.data >= 0, 1.0, -1.0).astype(np.float32)
        conv = F.conv2d(Tensor(xs), Tensor(sign_w), stride=1, padding=1).data
        expected = conv * alpha[None, :, None, None] * k
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_bwn_mode_skips_input_binarization(self, rng):
        layer = BinaryConv2d(1, 2, 3, padding=1, binarize_input=False, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        out = layer(x).data
        sign_w, alpha = layer.binary_weights()
        expected = (
            F.conv2d(x, Tensor(sign_w), padding=1).data * alpha[None, :, None, None]
        )
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_gradients_flow_to_master_weights(self, rng):
        layer = BinaryConv2d(2, 2, 3, rng=rng)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)).astype(np.float32))
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0

    def test_gradients_flow_to_input(self, rng):
        layer = BinaryConv2d(2, 2, 3, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 5, 5)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None

    def test_bias_applied(self, rng):
        layer = BinaryConv2d(1, 1, 3, padding=1, rng=rng)
        layer.bias.data[:] = 10.0
        x = Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32))
        assert (layer(x).data > 5).all()

    def test_output_shape_helper(self, rng):
        layer = BinaryConv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer.output_shape(16, 16) == (8, 8, 8)

    def test_repr_mode(self, rng):
        assert "xnor" in repr(BinaryConv2d(1, 1, 3, rng=rng))
        assert "bwn" in repr(BinaryConv2d(1, 1, 3, binarize_input=False, rng=rng))


class TestBinaryLinear:
    def test_forward_matches_composition(self, rng):
        layer = BinaryLinear(8, 4, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((3, 8)).astype(np.float32))
        out = layer(x).data
        sign_w, alpha = layer.binary_weights()
        beta = np.abs(x.data).mean(axis=1, keepdims=True)
        xs = np.where(x.data >= 0, 1.0, -1.0).astype(np.float32)
        expected = (xs @ sign_w.T) * alpha[None, :] * beta
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_bwn_mode(self, rng):
        layer = BinaryLinear(4, 2, binarize_input=False, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        sign_w, alpha = layer.binary_weights()
        expected = (x.data @ sign_w.T) * alpha[None, :]
        np.testing.assert_allclose(layer(x).data, expected, rtol=1e-4)

    def test_gradients_flow(self, rng):
        layer = BinaryLinear(6, 3, rng=rng)
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert layer.weight.grad is not None and x.grad is not None

    def test_trains_on_separable_data(self, rng):
        """A single binary linear layer must learn a linearly separable task."""
        from repro.optim import Adam

        x = rng.standard_normal((256, 16)).astype(np.float32)
        y = (x[:, 0] > 0).astype(int)
        model = nn.Sequential(nn.BatchNorm1d(16), BinaryLinear(16, 2, rng=rng))
        opt = Adam(model.parameters(), lr=5e-2)
        for _ in range(150):
            logits = model(Tensor(x))
            loss = F.cross_entropy(logits, y)
            model.zero_grad()
            loss.backward()
            opt.step()
            clamp_master_weights(model)
        model.eval()
        acc = F.accuracy(model(Tensor(x)).data, y)
        assert acc > 0.9


class TestClampMasterWeights:
    def test_clamps_binary_layers_only(self, rng):
        binary = BinaryLinear(4, 2, rng=rng)
        dense = nn.Linear(4, 2, rng=rng)
        binary.weight.data[:] = 5.0
        dense.weight.data[:] = 5.0
        model = nn.Sequential(binary, dense)
        clamp_master_weights(model)
        assert binary.weight.data.max() <= 1.0
        assert dense.weight.data.max() == 5.0

    def test_custom_bound(self, rng):
        layer = BinaryConv2d(1, 1, 3, rng=rng)
        layer.weight.data[:] = -3.0
        clamp_master_weights(layer, bound=0.5)
        np.testing.assert_allclose(layer.weight.data, -0.5)
