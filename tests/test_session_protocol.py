"""Deployment ↔ protocol integration: the miss path over real frames."""

from dataclasses import replace

import numpy as np
import pytest

from repro.runtime import (
    INT8_CODEC,
    LCRSDeployment,
    four_g,
)


@pytest.fixture
def strict_deployment(trained_system, tiny_mnist):
    """A deployment whose τ forces ~80 % of samples onto the edge path."""
    from repro.core import branch_entropies

    _, test = tiny_mnist
    entropies, _, _ = branch_entropies(trained_system.model, test.images)
    original = trained_system.calibration
    trained_system.calibration = replace(
        original, threshold=float(np.quantile(entropies, 0.2))
    )
    deployment = LCRSDeployment(trained_system, four_g(seed=9))
    yield deployment, test
    trained_system.calibration = original


class TestProtocolMissPath:
    def test_misses_flow_through_protocol_server(self, strict_deployment):
        deployment, test = strict_deployment
        session = deployment.run_session(test.images[:50])
        misses = sum(not o.exited_locally for o in session.outcomes)
        assert misses >= 25  # the strict threshold really forces traffic
        assert deployment.edge.requests_served == misses

    def test_protocol_answers_match_direct_trunk(self, strict_deployment, trained_system):
        from repro.nn.autograd import Tensor, no_grad

        deployment, test = strict_deployment
        session = deployment.run_session(test.images[:50])
        model = trained_system.model
        model.eval()
        for outcome in session.outcomes:
            if outcome.exited_locally:
                continue
            with no_grad():
                features = deployment.browser.stem_engine.forward(
                    test.images[outcome.index][None]
                )
                expected = model.main_trunk(Tensor(features)).data.argmax(axis=1)[0]
            assert outcome.prediction == int(expected)

    def test_int8_codec_over_protocol(self, trained_system, tiny_mnist):
        from repro.core import branch_entropies

        _, test = tiny_mnist
        entropies, _, _ = branch_entropies(trained_system.model, test.images)
        original = trained_system.calibration
        try:
            trained_system.calibration = replace(
                original, threshold=float(np.quantile(entropies, 0.2))
            )
            deployment = LCRSDeployment(
                trained_system, four_g(seed=9), feature_codec=INT8_CODEC
            )
            session = deployment.run_session(test.images[:60])
            assert session.exit_rate < 0.5
            assert session.accuracy(test.labels[:60]) > 0.6
        finally:
            trained_system.calibration = original

    def test_bundle_served_by_protocol(self, strict_deployment):
        from repro.runtime import ModelRequest, ModelResponse, decode_frame, encode_frame

        deployment, _ = strict_deployment
        name = deployment.system.model.base_name
        reply = decode_frame(
            deployment._edge_server.handle(encode_frame(ModelRequest(name)))
        )
        assert isinstance(reply, ModelResponse)
        assert len(reply.payload) == deployment.bundle_bytes
