"""Browser inference library analog: model format, bit-packed interpreter.

Reproduces the paper's JavaScript/WASM pipeline (Figure 3): serialize the
browser bundle, execute it standalone with XNOR+popcount kernels, and
validate against the training framework.
"""

from .bitpack import (
    DEFAULT_BLOCK_BYTES,
    PackedDotStats,
    last_dot_stats,
    pack_rows_with_mask,
    pack_signs,
    packed_dot,
    total_bytes_popcounted,
    unpack_signs,
)
from .interpreter import ConvGeometry, WasmModel, conv_geometry
from .plan import (
    CompiledPlan,
    PlanCompileError,
    PlanExecutionError,
    PlanVerificationError,
    compile_trunk_plan,
    compile_wasm_plan,
)
from .plan_compile import backend_available, backend_error
from .model_format import (
    FORMAT_VERSION,
    MAGIC,
    ModelFormatError,
    ParsedModel,
    iter_leaf_modules,
    parse_model,
    serialize_browser_bundle,
)
from .validation import ValidationReport, validate_bundle

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "FORMAT_VERSION",
    "MAGIC",
    "CompiledPlan",
    "ConvGeometry",
    "ModelFormatError",
    "PackedDotStats",
    "ParsedModel",
    "PlanCompileError",
    "PlanExecutionError",
    "PlanVerificationError",
    "ValidationReport",
    "WasmModel",
    "backend_available",
    "backend_error",
    "compile_trunk_plan",
    "compile_wasm_plan",
    "conv_geometry",
    "iter_leaf_modules",
    "last_dot_stats",
    "pack_rows_with_mask",
    "pack_signs",
    "packed_dot",
    "parse_model",
    "serialize_browser_bundle",
    "total_bytes_popcounted",
    "unpack_signs",
    "validate_bundle",
]
