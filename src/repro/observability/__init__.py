"""Observability: one clock, one metrics registry, one request tracer.

The measurement substrate beneath every ``BENCH_*.json`` number and
latency claim in this repository:

* :mod:`~repro.observability.clock` — the only sanctioned wall-clock
  (simulated-ms and wall-ms must never be conflated; a lint test rejects
  direct ``time.perf_counter()`` use elsewhere);
* :mod:`~repro.observability.metrics` — named counters / gauges /
  fixed-bucket histograms with p50/p95/p99 summaries, the registry the
  legacy counter dataclasses now facade over;
* :mod:`~repro.observability.tracing` — span-based request tracing with
  a trace id per serving chunk and an allocation-free
  :data:`NULL_RECORDER` default;
* :mod:`~repro.observability.export` — JSONL, Chrome ``trace_event``,
  and Prometheus text-format exporters (``repro trace`` CLI,
  Perfetto-loadable timelines, scrape endpoints);
* :mod:`~repro.observability.windows` — sliding time-window views
  (bounded rings, exact within-window percentiles) tapped onto metrics
  through their watcher hooks;
* :mod:`~repro.observability.slo` — declarative objectives with
  multi-window burn-rate alerting over those windows;
* :mod:`~repro.observability.top` — the ``repro top`` / ``repro
  health`` dashboard renderer (pure formatting over health snapshots).
"""

from .clock import Stopwatch, now_ms, now_s
from .export import (
    chrome_trace,
    prometheus_text,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    labeled,
    parse_labels,
)
from .slo import (
    BurnRatePolicy,
    SloMonitor,
    SloSpec,
    default_fleet_slos,
)
from .top import render_fleet_top
from .tracing import NULL_RECORDER, NullRecorder, Span, TelemetrySummary, Tracer
from .windows import MetricWindows, WindowedSeries

__all__ = [
    "BurnRatePolicy",
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricWindows",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "SloMonitor",
    "SloSpec",
    "Span",
    "Stopwatch",
    "TelemetrySummary",
    "Tracer",
    "WindowedSeries",
    "chrome_trace",
    "default_fleet_slos",
    "global_registry",
    "labeled",
    "now_ms",
    "now_s",
    "parse_labels",
    "prometheus_text",
    "render_fleet_top",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
