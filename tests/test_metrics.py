"""Tests for the classification metrics module."""

import numpy as np
import pytest

from repro.metrics import (
    classification_report,
    confusion_matrix,
    expected_calibration_error,
    exit_risk_coverage,
    top_k_accuracy,
)


class TestConfusionMatrix:
    def test_perfect_predictions_are_diagonal(self):
        labels = np.array([0, 1, 2, 1, 0])
        matrix = confusion_matrix(labels, labels, 3)
        assert matrix.sum() == 5
        np.testing.assert_array_equal(matrix, np.diag([2, 2, 1]))

    def test_off_diagonal_counts(self):
        preds = np.array([1, 1])
        labels = np.array([0, 0])
        matrix = confusion_matrix(preds, labels, 2)
        assert matrix[0, 1] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 2)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0]), 0)


class TestClassificationReport:
    def test_perfect_scores(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        report = classification_report(labels, labels, 3)
        np.testing.assert_allclose(report.precision, 1.0)
        np.testing.assert_allclose(report.recall, 1.0)
        np.testing.assert_allclose(report.f1, 1.0)
        assert report.accuracy == 1.0

    def test_known_values(self):
        # Class 0: 2 true, 1 predicted correctly; one 0 predicted as 1.
        preds = np.array([0, 1, 1])
        labels = np.array([0, 0, 1])
        report = classification_report(preds, labels, 2)
        assert report.recall[0] == pytest.approx(0.5)
        assert report.precision[0] == pytest.approx(1.0)
        assert report.precision[1] == pytest.approx(0.5)
        assert report.support.tolist() == [2, 1]

    def test_absent_class_zero_not_nan(self):
        preds = np.array([0, 0])
        labels = np.array([0, 0])
        report = classification_report(preds, labels, 3)
        assert np.isfinite(report.f1).all()
        assert report.f1[2] == 0.0

    def test_render_contains_macro(self):
        report = classification_report(np.array([0, 1]), np.array([0, 1]), 2)
        text = report.render(["cat", "dog"])
        assert "macro" in text and "cat" in text


class TestTopK:
    def test_top1_equals_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(2 / 3)

    def test_topk_saturates(self):
        logits = np.random.randn(10, 4)
        labels = np.random.randint(0, 4, 10)
        assert top_k_accuracy(logits, labels, k=4) == 1.0

    def test_k_larger_than_classes_clamped(self):
        logits = np.random.randn(5, 3)
        labels = np.random.randint(0, 3, 5)
        assert top_k_accuracy(logits, labels, k=10) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 2)), np.zeros(2, int), k=0)


class TestECE:
    def test_perfectly_calibrated_low_ece(self):
        rng = np.random.default_rng(0)
        n = 5000
        confidence = rng.uniform(0.5, 1.0, n)
        correct = rng.random(n) < confidence
        probs = np.stack([confidence, 1 - confidence], axis=1)
        labels = np.where(correct, 0, 1)
        assert expected_calibration_error(probs, labels) < 0.05

    def test_overconfident_model_high_ece(self):
        n = 1000
        probs = np.tile([0.99, 0.01], (n, 1))
        labels = np.array([0] * (n // 2) + [1] * (n // 2))  # 50% correct
        assert expected_calibration_error(probs, labels) > 0.4

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((2, 2)), np.zeros(2, int), bins=0)


class TestRiskCoverage:
    def test_good_score_orders_risk(self):
        rng = np.random.default_rng(1)
        n = 2000
        scores = rng.uniform(0, 1, n)
        correct = rng.random(n) > scores * 0.8  # low score → likely correct
        coverage, risk = exit_risk_coverage(scores, correct)
        assert len(coverage) == len(risk) == 20
        # Risk grows with coverage for an informative score.
        assert risk[0] < risk[-1]

    def test_full_coverage_risk_is_error_rate(self):
        scores = np.linspace(0, 1, 100)
        correct = np.ones(100, dtype=bool)
        correct[::4] = False
        _, risk = exit_risk_coverage(scores, correct)
        assert risk[-1] == pytest.approx(1 - correct.mean())

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            exit_risk_coverage(np.zeros(3), np.zeros(4, bool))
