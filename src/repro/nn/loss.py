"""Loss functions used by the LCRS training procedures."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .autograd import Tensor
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy against integer class labels (paper Eq. 2).

    Expects raw logits; softmax is fused into the loss for stability.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        super().__init__()
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, self.label_smoothing)

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(label_smoothing={self.label_smoothing})"


class JointLoss(Module):
    """Joint optimization objective of the composite network (paper Eq. 1).

    ``L = w_main · L_main + w_binary · L_binary`` — the paper uses unit
    weights; the weights are exposed for the ablation benchmarks.
    """

    def __init__(
        self,
        main_weight: float = 1.0,
        binary_weight: float = 1.0,
        label_smoothing: float = 0.0,
    ) -> None:
        super().__init__()
        self.main_weight = main_weight
        self.binary_weight = binary_weight
        self._ce = CrossEntropyLoss(label_smoothing)

    def forward(
        self, main_logits: Tensor, binary_logits: Tensor, targets: np.ndarray
    ) -> Tensor:
        loss_main = self._ce(main_logits, targets)
        loss_binary = self._ce(binary_logits, targets)
        return loss_main * self.main_weight + loss_binary * self.binary_weight

    def components(
        self, main_logits: Tensor, binary_logits: Tensor, targets: np.ndarray
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Return (total, main, binary) losses for logging."""
        loss_main = self._ce(main_logits, targets)
        loss_binary = self._ce(binary_logits, targets)
        total = loss_main * self.main_weight + loss_binary * self.binary_weight
        return total, loss_main, loss_binary

    def __repr__(self) -> str:
        return f"JointLoss(main={self.main_weight}, binary={self.binary_weight})"
