"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import save_system
from repro.wasm import parse_model


@pytest.fixture
def checkpoint(trained_system, tmp_path):
    return save_system(trained_system, tmp_path / "system.npz")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.network == "lenet"
        assert args.dataset == "mnist"

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--network", "squeezenet"])

    def test_all_commands_registered(self):
        parser = build_parser()
        commands = (
            "train", "evaluate", "export", "study", "session", "scale",
            "trace", "fleet", "health", "top", "plan", "tau",
        )
        needs_checkpoint = (
            "evaluate", "session", "scale", "trace", "fleet", "health",
            "top", "plan", "tau",
        )
        for command in commands:
            assert parser.parse_args([command] + (
                ["x.npz"]
                if command in needs_checkpoint
                else ["x.npz", "y.lcrs"] if command == "export" else []
            )).command == command

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet", "x.npz"])
        assert args.shards == [1, 2, 4]
        assert args.requests == 48
        assert not args.partition

    def test_session_rejects_unknown_fault_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["session", "x.npz", "--fault-profile", "chaos"])


class TestTrainCommand:
    def test_train_and_checkpoint(self, tmp_path, capsys):
        code = main(
            [
                "train",
                "--network", "lenet",
                "--dataset", "mnist",
                "--train-samples", "200",
                "--test-samples", "100",
                "--epochs", "1",
                "--checkpoint", str(tmp_path / "out.npz"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "M_Acc=" in out and "checkpoint written" in out
        assert (tmp_path / "out.npz").exists()


class TestEvaluateCommand:
    def test_evaluate_checkpoint(self, checkpoint, capsys):
        code = main(["evaluate", str(checkpoint), "--test-samples", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lenet/mnist" in out and "collab=" in out


class TestExportCommand:
    def test_export_writes_valid_bundle(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "bundle.lcrs"
        code = main(["export", str(checkpoint), str(output)])
        assert code == 0
        parsed = parse_model(output.read_bytes())
        assert parsed.metadata["network"] == "lenet"
        assert parsed.metadata["tau"] is not None


class TestSessionCommand:
    def test_clean_session_reports_no_fallback(self, checkpoint, capsys):
        code = main(["session", str(checkpoint), "--samples", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fallback=0.0%" in out
        assert "served_by:" in out and "link:" in out

    def test_partitioned_session_falls_back(self, checkpoint, capsys):
        code = main(
            [
                "session", str(checkpoint),
                "--samples", "40",
                "--fault-profile", "partition",
                "--max-attempts", "2",
                "--attempt-timeout-ms", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "binary-fallback=" in out
        assert "frames_dropped=" in out

    def test_json_report_surfaces_retry_and_queue_ms(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "session.json"
        code = main(
            [
                "session", str(checkpoint),
                "--samples", "24",
                "--batch-size", "8",
                "--json", str(output),
            ]
        )
        assert code == 0
        import json

        record = json.loads(output.read_text())
        assert "mean_retry_ms" in record and "mean_queue_ms" in record
        assert len(record["per_sample"]) == 24
        for sample in record["per_sample"]:
            assert "retry_ms" in sample and "queue_ms" in sample
            assert sample["retry_ms"] >= 0.0 and sample["queue_ms"] >= 0.0

    def test_drop_override_on_batched_path(self, checkpoint, capsys):
        code = main(
            [
                "session", str(checkpoint),
                "--samples", "40",
                "--drop", "1.0",
                "--batch-size", "16",
                "--max-attempts", "2",
                "--attempt-timeout-ms", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "binary-fallback=" in out


class TestScaleCommand:
    def test_scale_sweep_writes_json(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "scale.json"
        code = main(
            [
                "scale", str(checkpoint),
                "--users", "1", "2",
                "--window-ms", "0.0", "4.0",
                "--samples", "8",
                "--session-batch", "4",
                "--threshold", "0.05",
                "--json", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "users" in out and "speedup" in out
        assert output.exists()
        import json

        record = json.loads(output.read_text())
        # One per-request comparator plus two windowed cells per user count.
        assert len(record["points"]) == 6
        for point in record["points"]:
            assert "mean_retry_ms" in point and "mean_queue_ms" in point


@pytest.mark.fleet
class TestFleetCommand:
    def test_fleet_sweep_with_partition_writes_json(
        self, checkpoint, tmp_path, capsys
    ):
        output = tmp_path / "fleet.json"
        code = main(
            [
                "fleet", str(checkpoint),
                "--shards", "1", "2",
                "--requests", "8",
                "--batch-size", "2",
                "--partition",
                "--partition-sessions", "2",
                "--partition-samples", "8",
                "--p99-ms", "10.0",
                "--json", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards" in out and "capacity planning" in out
        assert "partition drill" in out
        assert output.exists()
        import json

        record = json.loads(output.read_text())
        assert {"capacity", "partition", "planning"} <= set(record)
        points = record["capacity"]["points"]
        assert [p["shards"] for p in points] == [1, 2]
        assert points[0]["bit_identical_to_bare"] is True
        assert record["partition"]["all_samples_served"] is True

    def test_fleet_rejects_indivisible_requests(self, checkpoint, capsys):
        with pytest.raises(ValueError, match="divide evenly"):
            main(["fleet", str(checkpoint), "--shards", "3", "--requests", "8"])


@pytest.mark.tau
class TestTauCommand:
    def test_tau_sweep_writes_json(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "tau.json"
        code = main(
            [
                "tau", str(checkpoint),
                "--sessions", "2", "4",
                "--rounds", "6",
                "--bases", "2",
                "--json", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive τ drill" in out
        assert "headline @ 4 sessions" in out
        assert output.exists()
        import json

        record = json.loads(output.read_text())
        assert record["num_bases"] == 2
        # Two loop modes per session level, open first.
        assert [
            (p["sessions"], p["controller"]) for p in record["points"]
        ] == [(2, False), (2, True), (4, False), (4, True)]
        assert "static_shed_rate" in record["headline"]
        for point in record["points"]:
            assert len(point["tau_trajectory"]) == point["rounds"]


class TestTraceCommand:
    def test_trace_exports_chrome_json(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "trace.json"
        code = main(
            [
                "trace", str(checkpoint),
                "--users", "2",
                "--samples", "8",
                "--session-batch", "4",
                "--threshold", "0.05",
                "--out", str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traces=" in out and "Perfetto" in out
        import json

        record = json.loads(output.read_text())
        assert record["displayTimeUnit"] == "ms"
        events = record["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "chunk" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_trace_exports_jsonl(self, checkpoint, tmp_path, capsys):
        output = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace", str(checkpoint),
                "--users", "1",
                "--samples", "8",
                "--threshold", "0.05",
                "--format", "jsonl",
                "--out", str(output),
            ]
        )
        assert code == 0
        import json

        lines = [json.loads(line) for line in output.read_text().splitlines()]
        assert lines and all("name" in span and "trace_id" in span for span in lines)


class TestStudyCommand:
    def test_study_prints_tables(self, capsys):
        code = main(["study", "--samples", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out and "Figure 7" in out


@pytest.mark.fleet
class TestHealthCommand:
    def test_health_prints_snapshot_and_writes_artifacts(
        self, checkpoint, tmp_path, capsys
    ):
        import json

        out_json = tmp_path / "drill.json"
        prom = tmp_path / "metrics.prom"
        code = main(
            [
                "health", str(checkpoint),
                "--samples", "24",
                "--out", str(out_json),
                "--prometheus", str(prom),
            ]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert {"rounds", "shards", "alerts", "slo"} <= set(snapshot)
        assert len(snapshot["shards"]) == 2
        record = json.loads(out_json.read_text())
        assert record["monitored"] is True
        assert "alert_events" in record
        text = prom.read_text()
        assert "# TYPE" in text and "fleet_requests_total" in text


@pytest.mark.fleet
class TestTopCommand:
    def test_top_renders_one_frame_per_round(self, checkpoint, capsys):
        code = main(["top", str(checkpoint), "--samples", "24", "--no-ansi"])
        assert code == 0
        out = capsys.readouterr().out
        frames = out.count("SHARD  STATE")
        assert frames >= 4  # one frame per fleet round
        assert "drill complete" in out
        assert "\x1b[2J" not in out  # --no-ansi suppresses clears

    def test_top_ansi_mode_clears_between_frames(self, checkpoint, capsys):
        code = main(["top", str(checkpoint), "--samples", "24"])
        assert code == 0
        assert "\x1b[2J" in capsys.readouterr().out
