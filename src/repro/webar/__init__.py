"""Web AR application layer: scan→recognize→render pipeline and case studies."""

from .cases import WebARCase, build_case, china_mobile_case, fenjiu_case
from .pipeline import (
    ARInteraction,
    ARSessionReport,
    CAMERA_FRAME_BYTES,
    DEFAULT_RENDER_MS,
    DEFAULT_SCAN_MS,
    LCRSRecognizer,
    WebARPipeline,
)

__all__ = [
    "ARInteraction",
    "ARSessionReport",
    "CAMERA_FRAME_BYTES",
    "DEFAULT_RENDER_MS",
    "DEFAULT_SCAN_MS",
    "LCRSRecognizer",
    "WebARCase",
    "WebARPipeline",
    "build_case",
    "china_mobile_case",
    "fenjiu_case",
]
