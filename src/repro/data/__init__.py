"""Data substrate: datasets, loaders, synthetic generators, augmentation.

Synthetic generators replace the paper's public datasets (MNIST /
FashionMNIST / CIFAR10 / CIFAR100) for offline reproduction; see
DESIGN.md §2 for the substitution rationale.
"""

from .augment import (
    Augmenter,
    additive_noise,
    affine_warp,
    color_perturbation,
    horizontal_flip,
    rotate,
    translate,
    vertical_flip,
    zoom,
)
from .dataset import ArrayDataset, DataLoader, Dataset
from .logos import (
    LOGO_RENDERERS,
    LogoDatasetConfig,
    make_logo_dataset,
    render_china_mobile_style,
    render_fenjiu_style,
)
from .synthetic import DATASET_NAMES, SPECS, SyntheticSpec, generate, make_dataset

__all__ = [
    "ArrayDataset",
    "Augmenter",
    "DATASET_NAMES",
    "DataLoader",
    "Dataset",
    "LOGO_RENDERERS",
    "LogoDatasetConfig",
    "SPECS",
    "SyntheticSpec",
    "additive_noise",
    "affine_warp",
    "color_perturbation",
    "generate",
    "horizontal_flip",
    "make_dataset",
    "make_logo_dataset",
    "render_china_mobile_style",
    "render_fenjiu_style",
    "rotate",
    "translate",
    "vertical_flip",
    "zoom",
]
