"""Multi-edge fleet: sharded routing, autoscaling, and failure domains.

One :class:`~repro.runtime.scheduler.EdgeScheduler` is one box.  The
paper's §I cost argument is about *millions* of AR users, and no single
edge server survives that arrival rate — the fleet is the horizontal
story: N scheduler shards, each with its own
:class:`~repro.runtime.worker_pool.WorkerPool`, bounded queue, and
:class:`~repro.runtime.concurrency.ServiceTimeModel`, behind a
:class:`FleetRouter` that places *sessions* (not requests) onto shards.

The router speaks the scheduler's exact wire surface — ``submit`` /
``flush`` / ``collect`` / ``register`` — so every existing client path
(:meth:`~repro.runtime.session.LCRSDeployment._submit_with_retry`,
:func:`~repro.runtime.scheduler.run_concurrent_sessions`) runs against a
fleet unchanged.  Three concerns live here:

* **Placement** — sticky session→shard assignment, selectable via
  :class:`FleetConfig`: ``"hash"`` consistent-hashes session ids onto a
  virtual-node ring (deterministic for a fixed seed; adding a shard
  claims only new sessions, removing one moves only its sessions) or
  ``"least-loaded"`` places each new session on the emptiest shard.
* **Failure domains** — each shard is reached through a control link
  that :class:`~repro.runtime.network.FaultyLink` profiles can
  partition.  The router counts *consecutive* structured-503/timeout
  signals per shard; at ``failure_threshold`` the shard is marked down,
  its uncollected tickets answer with structured 503s, and its live
  sessions re-route to healthy shards — the client's existing
  retry-then-binary-fallback path absorbs the blip, so overload and
  partition degrade accuracy, never availability.
* **Autoscaling** — an :class:`Autoscaler` watches the per-shard
  ``sched.queue_depth`` / ``sched.workers_busy`` gauges each flush
  round and adds or drains shards with hysteresis (hold rounds, a dead
  band between thresholds, and a cooldown) inside ``[min_shards,
  max_shards]``.  Draining is remove-safe: a draining shard takes no new
  sessions, finishes its in-flight tickets, and only then retires.

Every shard writes shard-labeled metric series
(``sched.queue_depth{shard=2}``) into the router's shared registry, so
fleet telemetry exports as one snapshot without shards folding into a
single series; a bare scheduler keeps the unlabeled names bit-for-bit.

Timing stays fully simulated and deterministic: shards price their own
batches on their own worker clocks, and the fleet makespan is the
latest shard's clock — which is what the M/M/c·N capacity bound in
:mod:`repro.experiments.fleet` cross-checks.
"""

from __future__ import annotations

import hashlib
import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..observability import NULL_RECORDER
from ..observability.metrics import MetricsRegistry, labeled
from ..observability.slo import BurnRatePolicy, SloMonitor, default_fleet_slos
from .network import FAULT_PROFILES, FrameDropped, FrameTimeout, NetworkLink, faulty
from .protocol import (
    BatchInferenceRequest,
    ErrorResponse,
    ProtocolError,
    SchedulerAck,
    decode_frame,
    encode_frame,
)
from .scheduler import EdgeScheduler, SchedulerConfig
from .tau_control import TauControlConfig, TauController

#: Placement policies :class:`FleetConfig` accepts.
PLACEMENT_POLICIES = ("hash", "least-loaded")

#: Shard lifecycle states.  ``active`` shards take new sessions;
#: ``draining`` shards serve nothing new and retire once empty;
#: ``down`` shards are partitioned away; ``retired`` shards only answer
#: outstanding :meth:`FleetRouter.collect` calls.
SHARD_ACTIVE = "active"
SHARD_DRAINING = "draining"
SHARD_DOWN = "down"
SHARD_RETIRED = "retired"

#: Autoscaler pressure signals :class:`AutoscalerConfig` accepts.
AUTOSCALER_POLICIES = ("queue-depth", "burn-rate")


@dataclass(frozen=True)
class AutoscalerConfig:
    """Hysteresis bounds for fleet sizing.

    The signal is the per-round mean of each active shard's queue-depth
    high-water (samples queued at admission, from the
    ``sched.queue_depth{shard=i}`` gauges) plus the worker-busy fraction
    (``sched.workers_busy{shard=i}`` over ``num_workers``).  Pressure
    above ``scale_up_depth`` for ``hold_rounds`` consecutive rounds adds
    a shard; idling below ``scale_down_depth`` for ``hold_rounds``
    drains one.  The dead band between the two thresholds, the hold
    requirement, and ``cooldown_rounds`` after any action are the
    anti-flapping contract an oscillating load trace must not defeat.
    """

    min_shards: int = 1
    max_shards: int = 8
    scale_up_depth: float = 64.0
    scale_down_depth: float = 8.0
    #: Additionally require this busy fraction before scaling up (0
    #: disables the check; 1.0 demands every worker saturated).
    min_busy_fraction: float = 0.0
    #: Only scale down when the busy fraction is at or below this.
    max_idle_busy_fraction: float = 1.0
    hold_rounds: int = 2
    cooldown_rounds: int = 2
    #: Pressure signal: ``"queue-depth"`` (the default, bit-compatible
    #: with fleets that predate SLO monitoring) reads the queue/busy
    #: gauges; ``"burn-rate"`` reads the attached
    #: :class:`~repro.observability.slo.SloMonitor`'s worst joint burn
    #: and scales on error-budget spend instead of raw backlog (requires
    #: :meth:`FleetRouter.enable_monitoring`; rounds without a burn
    #: reading fall back to the queue-depth signal).
    policy: str = "queue-depth"
    scale_up_burn: float = 2.0
    scale_down_burn: float = 0.5

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.scale_down_depth < 0 or self.scale_up_depth <= 0:
            raise ValueError("depth thresholds must be non-negative")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ValueError(
                "scale_down_depth must be below scale_up_depth "
                "(the dead band is the hysteresis)"
            )
        for name in ("min_busy_fraction", "max_idle_busy_fraction"):
            frac = getattr(self, name)
            if not 0.0 <= frac <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.hold_rounds < 1:
            raise ValueError("hold_rounds must be at least 1")
        if self.cooldown_rounds < 0:
            raise ValueError("cooldown_rounds must be non-negative")
        if self.policy not in AUTOSCALER_POLICIES:
            raise ValueError(
                f"unknown autoscaler policy {self.policy!r}; "
                f"choose from {list(AUTOSCALER_POLICIES)}"
            )
        if self.scale_down_burn < 0 or self.scale_up_burn <= 0:
            raise ValueError("burn thresholds must be non-negative")
        if self.scale_down_burn >= self.scale_up_burn:
            raise ValueError(
                "scale_down_burn must be below scale_up_burn "
                "(the dead band is the hysteresis)"
            )


@dataclass(frozen=True)
class FleetConfig:
    """Everything one :class:`FleetRouter` can vary — the frozen single
    entry point of the fleet API (``FleetRouter(shard_factory, config=…)``).

    ``scheduler`` is the per-shard :class:`SchedulerConfig` (every shard
    is an identical failure domain); ``placement`` selects the routing
    policy; ``autoscaler`` turns elastic sizing on (``None`` keeps the
    fleet at ``num_shards`` forever); ``failure_threshold`` is how many
    *consecutive* structured-503/timeout submit signals mark a shard
    down.  Frozen and hashable, mirroring ``SessionConfig``, so fleet
    operating points can be logged and compared across sweeps.
    """

    num_shards: int = 2
    placement: str = "hash"
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    autoscaler: Optional[AutoscalerConfig] = None
    failure_threshold: int = 3
    #: Ring points per shard for ``"hash"`` placement; more points give
    #: a smoother session spread at slightly larger rebuild cost.
    virtual_nodes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"choose from {list(PLACEMENT_POLICIES)}"
            )
        if not isinstance(self.scheduler, SchedulerConfig):
            raise TypeError("scheduler must be a SchedulerConfig")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        if self.autoscaler is not None:
            if not isinstance(self.autoscaler, AutoscalerConfig):
                raise TypeError("autoscaler must be an AutoscalerConfig")
            if not (
                self.autoscaler.min_shards
                <= self.num_shards
                <= self.autoscaler.max_shards
            ):
                raise ValueError(
                    "num_shards must start inside the autoscaler's "
                    "[min_shards, max_shards] bounds"
                )


class Autoscaler:
    """Hysteresis state machine over the per-round pressure signal.

    :meth:`step` is pure bookkeeping — it consumes one round's mean
    queue-depth high-water and busy fraction and answers ``"scale-up"``,
    ``"scale-down"``, or ``None``; the router applies the action.  Kept
    separate so the no-flapping contract is testable against synthetic
    load traces without building a fleet.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._over = 0
        self._under = 0
        self._cooldown = 0

    def step(
        self,
        mean_depth: float,
        busy_fraction: float,
        active_shards: int,
        burn_rate: Optional[float] = None,
    ) -> Optional[str]:
        cfg = self.config
        if cfg.policy == "burn-rate" and burn_rate is not None:
            # SLO-driven sizing: pressure is error-budget spend, not
            # backlog.  Same streak/dead-band/cooldown machinery, so the
            # no-flapping contract carries over unchanged.
            if burn_rate >= cfg.scale_up_burn:
                self._over += 1
                self._under = 0
            elif burn_rate <= cfg.scale_down_burn:
                self._under += 1
                self._over = 0
            else:
                self._over = 0
                self._under = 0
        elif mean_depth >= cfg.scale_up_depth and busy_fraction >= cfg.min_busy_fraction:
            self._over += 1
            self._under = 0
        elif (
            mean_depth <= cfg.scale_down_depth
            and busy_fraction <= cfg.max_idle_busy_fraction
        ):
            self._under += 1
            self._over = 0
        else:
            # The dead band between the thresholds: pressure is neither
            # high nor low, so any streak toward an action is broken.
            self._over = 0
            self._under = 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if self._over >= cfg.hold_rounds and active_shards < cfg.max_shards:
            self._over = 0
            self._cooldown = cfg.cooldown_rounds
            return "scale-up"
        if self._under >= cfg.hold_rounds and active_shards > cfg.min_shards:
            self._under = 0
            self._cooldown = cfg.cooldown_rounds
            return "scale-down"
        return None


def _loopback_link(shard_id: int) -> NetworkLink:
    """The router→shard control link: effectively free and fault-less
    until a partition profile wraps it."""
    return NetworkLink(
        name=f"shard{shard_id}", downlink_bps=1e9, uplink_bps=1e9, rtt_ms=0.0
    )


class _Shard:
    """One failure domain: a scheduler, its control link, its sessions."""

    __slots__ = (
        "shard_id",
        "scheduler",
        "base_link",
        "link",
        "state",
        "consecutive_failures",
        "sessions",
        "busy_gauge",
        "requests_ok",
        "requests_total",
    )

    def __init__(self, shard_id: int, scheduler: EdgeScheduler) -> None:
        self.shard_id = shard_id
        self.scheduler = scheduler
        self.base_link = _loopback_link(shard_id)
        self.link = self.base_link
        self.state = SHARD_ACTIVE
        self.consecutive_failures = 0
        self.sessions: set[int] = set()
        registry = scheduler.counters.registry
        self.busy_gauge = registry.gauge(
            scheduler.counters.metric_name("workers_busy")
        )
        # Availability series the per-shard SLO watches: a request is
        # "ok" when its reply was computed and collected from this
        # shard; failed submits and stranded tickets bump only the
        # total.  Bumped via Counter.add so windowed watchers fire.
        self.requests_ok = registry.counter(
            labeled("fleet.requests_ok", shard=shard_id)
        )
        self.requests_total = registry.counter(
            labeled("fleet.requests_total", shard=shard_id)
        )

    @property
    def placeable(self) -> bool:
        """May take a *new* session placement."""
        return self.state == SHARD_ACTIVE

    @property
    def serving(self) -> bool:
        """Still flushes queued work (active or finishing a drain)."""
        return self.state in (SHARD_ACTIVE, SHARD_DRAINING)

    def describe(self) -> dict[str, object]:
        c = self.scheduler.counters
        return {
            "shard": self.shard_id,
            "state": self.state,
            "sessions": len(self.sessions),
            "samples_served": c.samples_served,
            "batches": c.batches,
            "busy_ms": c.busy_ms,
            "throughput_rps": c.throughput_rps,
            "mean_queue_wait_ms": c.mean_queue_wait_ms,
            "shed_samples": c.shed_samples,
            "clock_ms": self.scheduler.clock_ms,
        }


@dataclass
class FleetHealth:
    """One fleet health snapshot — the payload behind ``repro health
    --json`` and each ``repro top`` frame.

    ``shards`` rows merge the shard's routing state (lifecycle state,
    placed sessions, consecutive failures, availability counters) with
    its scheduler's :meth:`~repro.runtime.scheduler.EdgeScheduler.health`
    panel and, when monitoring is on, that shard's SLO rows (state,
    burn rates, budget remaining).  ``alerts`` and ``slo`` are the
    monitor's live view (empty / ``None`` when monitoring is off).
    """

    rounds: int
    clock_ms: float
    active_shards: int
    samples_served: int
    shards: list[dict]
    alerts: list[dict]
    slo: Optional[dict]
    #: Closed-loop τ controller snapshot (``None`` when control is off):
    #: per-shard τ / quality tier / streaks plus the policy bounds.
    tau: Optional[dict] = None

    def as_dict(self) -> dict[str, object]:
        return {
            "rounds": self.rounds,
            "clock_ms": self.clock_ms,
            "active_shards": self.active_shards,
            "samples_served": self.samples_served,
            "shards": [dict(s) for s in self.shards],
            "alerts": [dict(a) for a in self.alerts],
            "slo": dict(self.slo) if self.slo is not None else None,
            "tau": dict(self.tau) if self.tau is not None else None,
        }


def _ring_point(seed: int, *parts: object) -> int:
    """Stable 64-bit hash for ring points and session keys (process- and
    run-independent, unlike ``hash``)."""
    payload = ":".join(str(p) for p in (seed, *parts)).encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class FleetRouter:
    """N scheduler shards behind one scheduler-shaped routing surface.

    ``shard_factory(shard_id, registry)`` builds one shard's
    :class:`EdgeScheduler` (pass ``shard=shard_id, registry=registry``
    through so its metrics land shard-labeled in the fleet registry);
    :meth:`for_system` wires the common case.  All client traffic enters
    via :meth:`submit`, which routes on the frame's session id, delivers
    through the shard's control link (the fault-injection point), and
    namespaces the shard's ticket into the fleet-global ticket space so
    :meth:`collect` stays a single flat lookup for callers.
    """

    def __init__(
        self,
        shard_factory: Callable[[int, MetricsRegistry], EdgeScheduler],
        config: Optional[FleetConfig] = None,
        recorder=None,
    ) -> None:
        self.config = config if config is not None else FleetConfig()
        self._factory = shard_factory
        self._recorder = recorder if recorder is not None else NULL_RECORDER
        #: Shared fleet registry: every shard writes shard-labeled
        #: series here, fleet-level counters are unlabeled ``fleet.*``.
        self.registry = MetricsRegistry()
        self._shards: dict[int, _Shard] = {}
        self._shard_ids = itertools.count()
        self._placement: dict[int, int] = {}
        self._tickets = itertools.count(1)
        #: global ticket -> (shard_id, local ticket), and the reverse.
        self._ticket_map: dict[int, tuple[int, int]] = {}
        self._local_to_global: dict[tuple[int, int], int] = {}
        #: Tickets stranded on a downed shard: collect() answers a 503.
        self._lost: dict[int, tuple[bytes, float]] = {}
        self.rounds = 0
        #: Hooks called as ``hook(router, round)`` at the top of every
        #: flush — the seam scripted failures and load traces plug into.
        self.before_flush_hooks: list[Callable[["FleetRouter", int], None]] = []
        self.after_flush_hooks: list[Callable[["FleetRouter", int], None]] = []
        self.events: list[dict[str, object]] = []
        #: Optional SLO monitor (see :meth:`enable_monitoring`).  ``None``
        #: keeps every serving path allocation-identical to a fleet that
        #: predates monitoring.
        self._monitor: Optional[SloMonitor] = None
        #: Optional closed-loop τ controller (see
        #: :meth:`enable_tau_control`).  ``None`` keeps routing, flushes,
        #: and session gating bit-identical to a static-τ fleet.
        self._tau: Optional[TauController] = None
        self.autoscaler = (
            Autoscaler(self.config.autoscaler)
            if self.config.autoscaler is not None
            else None
        )
        self._rerouted = self.registry.counter("fleet.sessions_rerouted")
        self._failures = self.registry.counter("fleet.shard_failures")
        self._lost_tickets = self.registry.counter("fleet.tickets_lost")
        self._scale_ups = self.registry.counter("fleet.scale_ups")
        self._scale_downs = self.registry.counter("fleet.scale_downs")
        self._shards_lost = self.registry.counter("fleet.shards_lost")
        self._active_gauge = self.registry.gauge("fleet.active_shards")
        self._ring: list[tuple[int, int]] = []
        for _ in range(self.config.num_shards):
            self.add_shard(_event=False)

    @classmethod
    def for_system(
        cls,
        system,
        config: Optional[FleetConfig] = None,
        service_model=None,
        recorder=None,
    ) -> "FleetRouter":
        """A fleet whose every shard serves one calibrated LCRS trunk.

        Shards share the system's trunk weights (the model is read-only
        at serving time and the engine is thread-safe) but own their
        worker pools, queues, and compiled-plan pools independently.
        """
        cfg = config if config is not None else FleetConfig()

        def factory(shard_id: int, registry: MetricsRegistry) -> EdgeScheduler:
            return EdgeScheduler.for_system(
                system,
                service_model=service_model,
                config=cfg.scheduler,
                shard=shard_id,
                registry=registry,
            )

        return cls(factory, cfg, recorder=recorder)

    # -- observability -------------------------------------------------
    @property
    def recorder(self):
        return self._recorder

    @recorder.setter
    def recorder(self, value) -> None:
        self._recorder = value if value is not None else NULL_RECORDER
        for shard in self._shards.values():
            shard.scheduler.recorder = self._recorder

    @property
    def clock_ms(self) -> float:
        """Fleet makespan: the latest shard's simulated clock."""
        if not self._shards:
            return 0.0
        return max(s.scheduler.clock_ms for s in self._shards.values())

    @property
    def monitor(self) -> Optional[SloMonitor]:
        return self._monitor

    def enable_monitoring(
        self,
        specs=None,
        policy: Optional[BurnRatePolicy] = None,
        recorder=None,
        capacity: Optional[int] = None,
    ) -> SloMonitor:
        """Attach an SLO monitor over the fleet registry (opt-in).

        The monitor's clock is the fleet's simulated makespan, so every
        window, burn rate, and alert transition is deterministic for a
        given run.  ``specs`` defaults to
        :func:`~repro.observability.slo.default_fleet_slos`; alert
        transitions emit ``slo.alert`` spans through ``recorder`` (the
        router's recorder when not given).  The monitor is evaluated
        once per :meth:`flush` round, after serving and before the
        autoscaler — which is what lets the ``"burn-rate"`` autoscaler
        policy read a fresh burn signal.  Without this call, no watcher
        is ever attached and the serving paths are unchanged.
        """
        if self._monitor is not None:
            return self._monitor
        kwargs = {} if capacity is None else {"capacity": capacity}
        self._monitor = SloMonitor(
            self.registry,
            specs if specs is not None else default_fleet_slos(),
            clock=lambda: self.clock_ms,
            policy=policy,
            recorder=recorder if recorder is not None else self._recorder,
            **kwargs,
        )
        return self._monitor

    @property
    def tau_controller(self) -> Optional[TauController]:
        return self._tau

    def enable_tau_control(
        self,
        config: Optional[TauControlConfig] = None,
        max_quality_tier: int = 1,
        recorder=None,
    ) -> TauController:
        """Attach a closed-loop τ controller over the fleet (opt-in).

        The controller reads each shard's windowed p99 queue wait off
        the fleet registry (same clock as the SLO monitor: the simulated
        makespan) and maintains a per-shard τ — and, when the deployment
        ships ``max_quality_tier`` > 1 accuracy tiers, a per-shard branch
        tier — that sessions pick up through
        :meth:`session_threshold` / :meth:`session_quality_tier`.  It
        runs once per :meth:`flush` round, after the SLO monitor (fresh
        burn signal for alerting) and before the autoscaler: τ is the
        fast relief valve, capacity the slow one.  Without this call no
        window is attached and sessions gate exactly as configured.
        """
        if self._tau is not None:
            return self._tau
        self._tau = TauController(
            config,
            registry=self.registry,
            clock=lambda: self.clock_ms,
            max_quality_tier=max_quality_tier,
            recorder=recorder if recorder is not None else self._recorder,
        )
        return self._tau

    def session_threshold(self, session_id: int) -> Optional[float]:
        """The controller's τ for a session's shard (``None`` = static τ).

        ``None`` — controller off, or the session not yet placed — tells
        the serving loop to leave the session's configured gate alone.
        """
        if self._tau is None:
            return None
        shard_id = self._placement.get(int(session_id))
        if shard_id is None:
            return None
        return self._tau.threshold(shard_id)

    def session_quality_tier(self, session_id: int) -> Optional[int]:
        """The controller's branch tier for a session's shard."""
        if self._tau is None:
            return None
        shard_id = self._placement.get(int(session_id))
        if shard_id is None:
            return None
        return self._tau.quality_tier(shard_id)

    @property
    def active_shard_ids(self) -> list[int]:
        return sorted(
            sid for sid, s in self._shards.items() if s.state == SHARD_ACTIVE
        )

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self._shards)

    def shard(self, shard_id: int) -> _Shard:
        return self._shards[shard_id]

    def placement_snapshot(self) -> dict[int, int]:
        """Current session→shard map (a copy)."""
        return dict(self._placement)

    def describe(self) -> dict[str, object]:
        """JSON-ready fleet summary: shards, placement, events, totals."""
        shards = [
            self._shards[sid].describe() for sid in sorted(self._shards)
        ]
        served = sum(int(s["samples_served"]) for s in shards)
        makespan = self.clock_ms
        return {
            "placement": self.config.placement,
            "rounds": self.rounds,
            "active_shards": len(self.active_shard_ids),
            "shards": shards,
            "samples_served": served,
            "fleet_makespan_ms": makespan,
            "fleet_throughput_rps": (
                served / makespan * 1e3 if makespan > 0 else 0.0
            ),
            "sessions_rerouted": self._rerouted.value,
            "shard_failures": self._failures.value,
            "tickets_lost": self._lost_tickets.value,
            "scale_ups": self._scale_ups.value,
            "scale_downs": self._scale_downs.value,
            "shards_lost": self._shards_lost.value,
            "events": [dict(e) for e in self.events],
        }

    def health(self) -> FleetHealth:
        """Snapshot the fleet's operational state (see :class:`FleetHealth`)."""
        now = self.clock_ms
        monitor = self._monitor
        shards: list[dict] = []
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            entry = shard.scheduler.health()
            entry.update(
                {
                    "shard": sid,
                    "state": shard.state,
                    "sessions": len(shard.sessions),
                    "consecutive_failures": shard.consecutive_failures,
                    "requests_ok": shard.requests_ok.value,
                    "requests_total": shard.requests_total.value,
                }
            )
            if monitor is not None:
                entry["slo"] = monitor.rows_for_labels({"shard": str(sid)}, now)
            if self._tau is not None:
                entry["tau"] = self._tau.state(sid).as_dict()
            shards.append(entry)
        return FleetHealth(
            rounds=self.rounds,
            clock_ms=now,
            active_shards=len(self.active_shard_ids),
            samples_served=sum(int(s["samples_served"]) for s in shards),
            shards=shards,
            alerts=monitor.active_alerts() if monitor is not None else [],
            slo=monitor.report(now) if monitor is not None else None,
            tau=self._tau.describe() if self._tau is not None else None,
        )

    def analytic_capacity_rps(self, batch_size: int = 1) -> float:
        """The M/M/c·N bound: active shards × per-shard capacity."""
        any_shard = next(iter(self._shards.values()))
        model = any_shard.scheduler.service_model
        c = self.config.scheduler.num_workers
        return len(self.active_shard_ids) * c / model.service_time_s(batch_size)

    # -- membership ----------------------------------------------------
    def _record(self, event: str, **detail: object) -> None:
        self.events.append({"round": self.rounds, "event": event, **detail})

    def _rebuild_ring(self) -> None:
        points: list[tuple[int, int]] = []
        for sid in self.active_shard_ids:
            for replica in range(self.config.virtual_nodes):
                points.append(
                    (_ring_point(self.config.seed, "shard", sid, replica), sid)
                )
        points.sort()
        self._ring = points

    def add_shard(self, _event: bool = True) -> int:
        """Bring one new shard into the active set; returns its id."""
        shard_id = next(self._shard_ids)
        scheduler = self._factory(shard_id, self.registry)
        scheduler.recorder = self._recorder
        self._shards[shard_id] = _Shard(shard_id, scheduler)
        self._rebuild_ring()
        self._active_gauge.set(float(len(self.active_shard_ids)))
        if self._monitor is not None:
            # Grouped SLOs pick up the new shard's labeled series now,
            # not at the next evaluation.
            self._monitor.sync()
        if _event:
            self._record("shard-added", shard=shard_id)
        return shard_id

    def drain_shard(self, shard_id: int) -> None:
        """Stop placing sessions on a shard; it retires once empty.

        In-flight tickets complete: queued work still flushes, computed
        replies stay collectable forever.  Its sessions re-route to
        active shards on their next submit.
        """
        shard = self._shards[shard_id]
        if shard.state != SHARD_ACTIVE:
            return
        shard.state = SHARD_DRAINING
        self._evict_sessions(shard)
        self._rebuild_ring()
        self._active_gauge.set(float(len(self.active_shard_ids)))
        self._record("shard-draining", shard=shard_id)

    def set_shard_link(self, shard_id: int, link) -> None:
        """Install a custom (e.g. scripted ``FaultyLink``) control link."""
        self._shards[shard_id].link = link

    def partition_shard(
        self, shard_id: int, profile: str = "partition", seed: int = 0
    ) -> None:
        """Wrap a shard's control link with a named fault profile.

        The default ``"partition"`` profile drops every frame, so the
        router's failure detector marks the shard down after
        ``failure_threshold`` consecutive failed submits.
        """
        if profile not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {profile!r}; "
                f"choose from {sorted(FAULT_PROFILES)}"
            )
        shard = self._shards[shard_id]
        shard.link = faulty(shard.base_link, profile, seed=seed)
        self._record("shard-partitioned", shard=shard_id, profile=profile)

    def heal_shard(self, shard_id: int) -> None:
        """Restore a shard's link and return a downed shard to service."""
        shard = self._shards[shard_id]
        shard.link = shard.base_link
        shard.consecutive_failures = 0
        if shard.state == SHARD_DOWN:
            shard.state = SHARD_ACTIVE
            self._rebuild_ring()
            self._active_gauge.set(float(len(self.active_shard_ids)))
        self._record("shard-healed", shard=shard_id)

    def rebalance(self) -> None:
        """Unpin every session so its next submit re-places it.

        Placement is sticky by design, so sessions rerouted off a downed
        shard stay crowded on the survivors after a heal — the queue-wait
        SLO keeps burning on a healthy fleet.  An operator (or the drill
        harness) calls this after membership recovers; re-placement uses
        the configured policy, so ``"hash"`` sessions return to their
        ring positions and ``"least-loaded"`` sessions spread evenly.
        """
        cleared = 0
        for shard in self._shards.values():
            cleared += len(shard.sessions)
            for sid in shard.sessions:
                self._placement.pop(sid, None)
            shard.sessions.clear()
        self._record("rebalance", sessions=cleared)

    def _evict_sessions(self, shard: _Shard) -> None:
        """Unpin a shard's sessions; they re-place on their next submit."""
        for sid in shard.sessions:
            if self._placement.get(sid) == shard.shard_id:
                del self._placement[sid]
                self._rerouted.add(1)
        shard.sessions.clear()

    def _mark_down(self, shard: _Shard) -> None:
        shard.state = SHARD_DOWN
        self._shards_lost.add(1)
        self._evict_sessions(shard)
        # Tickets stranded on the dead shard answer a structured 503 at
        # collect time, which the client rejects into its binary-branch
        # fallback — the blip costs accuracy on those chunks, never a
        # lost session.
        stranded = [
            (gt, pair)
            for gt, pair in self._ticket_map.items()
            if pair[0] == shard.shard_id
        ]
        for gt, pair in stranded:
            del self._ticket_map[gt]
            self._local_to_global.pop(pair, None)
            self._lost[gt] = (
                encode_frame(
                    ErrorResponse(
                        code=503,
                        message=f"shard {shard.shard_id} lost with ticket in flight",
                    )
                ),
                0.0,
            )
            self._lost_tickets.add(1)
            # The request happened; it will never be ok.
            shard.requests_total.add(1)
        self._rebuild_ring()
        self._active_gauge.set(float(len(self.active_shard_ids)))
        self._record(
            "shard-down", shard=shard.shard_id, stranded_tickets=len(stranded)
        )

    # -- placement -----------------------------------------------------
    def _place(self, session_id: int) -> _Shard:
        candidates = [self._shards[sid] for sid in self.active_shard_ids]
        if not candidates:
            raise RuntimeError("fleet has no active shards to place sessions on")
        if self.config.placement == "hash":
            point = _ring_point(self.config.seed, "session", session_id)
            idx = bisect_right(self._ring, (point, 2**64))
            shard_id = self._ring[idx % len(self._ring)][1]
            return self._shards[shard_id]
        # least-loaded: fewest placed sessions, then fewest queued
        # samples, then lowest shard id — fully deterministic.
        return min(
            candidates,
            key=lambda s: (
                len(s.sessions),
                s.scheduler.queued_samples(),
                s.shard_id,
            ),
        )

    def route(self, session_id: int) -> _Shard:
        """The (sticky) shard serving one session, re-placing if its
        current shard no longer accepts traffic."""
        sid = int(session_id)
        shard_id = self._placement.get(sid)
        if shard_id is not None:
            shard = self._shards[shard_id]
            if shard.placeable:
                return shard
            # Down, draining, or retired: the session moves.
            if sid in shard.sessions:
                shard.sessions.discard(sid)
                self._rerouted.add(1)
            del self._placement[sid]
        shard = self._place(sid)
        self._placement[sid] = shard.shard_id
        shard.sessions.add(sid)
        shard.scheduler.register(sid)
        return shard

    def register(self, tenant_id: int) -> None:
        """Eager placement + per-shard fair-share registration."""
        self.route(int(tenant_id))

    # -- admission -----------------------------------------------------
    def submit(self, frame: bytes, arrival_ms: float) -> bytes:
        """Route one miss-path frame to its session's shard.

        Mirrors :meth:`EdgeScheduler.submit`'s error contract (400 for
        undecodable frames, 405 for non-batch messages) and adds the
        fleet's: a 503 naming an unreachable shard when the control link
        eats the frame.  Accepted frames return the shard's ack with the
        ticket renumbered into the fleet-global space.
        """
        try:
            message = decode_frame(frame)
        except ProtocolError as exc:
            return encode_frame(ErrorResponse(code=400, message=str(exc)))
        if not isinstance(message, BatchInferenceRequest):
            return encode_frame(
                ErrorResponse(
                    code=405,
                    message=(
                        "fleet serves batched inference only, got "
                        f"{type(message).__name__}"
                    ),
                )
            )
        shard = self.route(message.session_id)
        scheduler = shard.scheduler
        try:
            raw = shard.link.exchange(
                frame, lambda f: scheduler.submit(f, arrival_ms)
            )
        except (FrameDropped, FrameTimeout) as exc:
            self._note_failure(shard, kind=type(exc).__name__)
            return encode_frame(
                ErrorResponse(
                    code=503,
                    message=f"shard {shard.shard_id} unreachable: {exc}",
                )
            )
        try:
            reply = decode_frame(raw)
        except ProtocolError:
            # A corrupted control-plane reply is indistinguishable from
            # a lost one to the client; surface it as the same 503.
            self._note_failure(shard, kind="corrupt-reply")
            return encode_frame(
                ErrorResponse(
                    code=503,
                    message=f"shard {shard.shard_id} answered garbage",
                )
            )
        if isinstance(reply, SchedulerAck):
            shard.consecutive_failures = 0
            key = (shard.shard_id, reply.ticket)
            ticket = self._local_to_global.get(key)
            if ticket is None:
                ticket = next(self._tickets)
                self._local_to_global[key] = ticket
                self._ticket_map[ticket] = key
            return encode_frame(
                SchedulerAck(
                    session_id=reply.session_id,
                    ticket=ticket,
                    queued_samples=reply.queued_samples,
                )
            )
        if isinstance(reply, ErrorResponse) and reply.code == 503:
            # Shed by the shard's own admission control: an overload
            # signal that, sustained, reads as a failing shard.
            self._note_failure(shard, kind="shed-503")
            return raw
        # 400/405 are the client's fault, not the shard's.
        return raw

    def _note_failure(self, shard: _Shard, kind: str) -> None:
        self._failures.add(1)
        shard.requests_total.add(1)
        shard.consecutive_failures += 1
        if (
            shard.consecutive_failures >= self.config.failure_threshold
            and shard.state != SHARD_DOWN
        ):
            self._mark_down(shard)

    # -- rounds --------------------------------------------------------
    def flush(self) -> list[int]:
        """Run one fleet round: hooks, per-shard flushes, autoscaling.

        Returns the served fleet-global tickets (all shards, shard-id
        order).  Draining shards that emptied last round retire here —
        after their queued work flushed and before new placement could
        reach them, which is the drain-before-remove guarantee.
        """
        self.rounds += 1
        for hook in list(self.before_flush_hooks):
            hook(self, self.rounds)
        served: list[int] = []
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.state == SHARD_DRAINING and shard.scheduler.queued_samples() == 0:
                shard.state = SHARD_RETIRED
                self._record("shard-retired", shard=sid)
                continue
            if not shard.serving:
                continue
            for local in shard.scheduler.flush():
                ticket = self._local_to_global.get((sid, local))
                if ticket is not None:
                    served.append(ticket)
        if self._monitor is not None:
            self._monitor.evaluate(self.clock_ms)
        if self._tau is not None:
            # The relief valve runs before the autoscaler: raising τ is
            # cheap and instant, adding a shard is neither.
            for adjust in self._tau.update(self.active_shard_ids, self.clock_ms):
                self._record("tau-adjust", **adjust)
        if self.autoscaler is not None:
            self._autoscale()
        for hook in list(self.after_flush_hooks):
            hook(self, self.rounds)
        return served

    def _autoscale(self) -> None:
        active = [self._shards[sid] for sid in self.active_shard_ids]
        if not active:
            return
        depths = []
        busy = []
        for shard in active:
            sched = shard.scheduler
            depths.append(sched.queue_depth_gauge.value)
            busy.append(shard.busy_gauge.value / sched.config.num_workers)
            # Reset the high-waters so next round's signal is its own.
            sched.queue_depth_gauge.set(float(sched.queued_samples()))
            shard.busy_gauge.set(0.0)
        mean_depth = sum(depths) / len(depths)
        busy_fraction = sum(busy) / len(busy)
        action = self.autoscaler.step(
            mean_depth,
            busy_fraction,
            len(active),
            burn_rate=self._monitor.last_burn if self._monitor is not None else None,
        )
        if action == "scale-up":
            shard_id = self.add_shard(_event=False)
            self._scale_ups.add(1)
            self._record(
                "scale-up",
                shard=shard_id,
                mean_depth=mean_depth,
                busy_fraction=busy_fraction,
            )
        elif action == "scale-down":
            victim = min(
                active,
                key=lambda s: (len(s.sessions), s.scheduler.queued_samples(), -s.shard_id),
            )
            self._scale_downs.add(1)
            self._record(
                "scale-down",
                shard=victim.shard_id,
                mean_depth=mean_depth,
                busy_fraction=busy_fraction,
            )
            self.drain_shard(victim.shard_id)

    # -- reply routing -------------------------------------------------
    def collect(self, ticket: int) -> tuple[bytes, float]:
        """Take one fleet ticket's reply: ``(encoded frame, queue delay ms)``.

        Tickets stranded by a shard loss answer a structured 503 frame —
        the client's reply validation rejects it into the binary-branch
        fallback, so the caller's contract (every admitted ticket gets
        exactly one reply) holds even across failure domains.
        """
        if ticket in self._lost:
            return self._lost.pop(ticket)
        pair = self._ticket_map.pop(ticket, None)
        if pair is None:
            raise KeyError(f"no result for ticket {ticket}; flush() first")
        self._local_to_global.pop(pair, None)
        shard_id, local = pair
        shard = self._shards[shard_id]
        reply = shard.scheduler.collect(local)
        shard.requests_ok.add(1)
        shard.requests_total.add(1)
        return reply
