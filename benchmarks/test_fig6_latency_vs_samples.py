"""Figure 6 — average latency vs number of samples (warm sessions).

The running-average latency per network over a jittery 4G link; the
paper observes it "almost stable" as samples grow, with fluctuations
from communication jitter on binary-branch misses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_figure6


def test_figure6_latency_vs_samples(benchmark, announce):
    result = benchmark.pedantic(
        lambda: run_figure6(max_samples=100, seed=0),
        rounds=1,
        iterations=1,
    )
    announce(result.render(), *result.stability_check())

    for network, series in result.series.items():
        assert len(series) == 100
        # Stability: the tail running average varies within a band.
        tail = series[50:]
        assert (tail.max() - tail.min()) / tail.mean() < 0.5, network
        # All averages stay sub-second in the warm regime.
        assert series[-1] < 1000, network

    # LeNet's average sits below the deeper networks' (lighter browser
    # compute and smaller miss payloads).
    assert result.series["lenet"][-1] == min(
        s[-1] for s in result.series.values()
    )


def test_benchmark_running_average(benchmark):
    """Time the per-session trace aggregation."""
    from repro.experiments import build_network_assets
    from repro.runtime import EDGE_SERVER, MOBILE_BROWSER_WASM, four_g, simulate_plan

    plan = build_network_assets("vgg16").lcrs.plan()
    link = four_g(seed=3, jitter_sigma=0.2)
    rng = np.random.default_rng(0)
    miss = (rng.random(200) > 0.78).tolist()

    def run():
        trace = simulate_plan(
            plan, 200, link, MOBILE_BROWSER_WASM, EDGE_SERVER,
            cold_start=False, miss_mask=miss,
        )
        return trace.running_average()

    benchmark(run)
