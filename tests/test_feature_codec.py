"""Tests for the feature-map wire codecs."""

import numpy as np
import pytest

from repro.runtime import (
    CodecError,
    FEATURE_CODECS,
    FP16_CODEC,
    FP32_CODEC,
    INT8_CODEC,
    get_codec,
    roundtrip_error,
)


@pytest.fixture
def features():
    rng = np.random.default_rng(0)
    # Post-ReLU-like feature maps: non-negative, moderate dynamic range.
    return np.abs(rng.standard_normal((2, 6, 14, 14)).astype(np.float32)) * 3


class TestCodecs:
    def test_registry(self):
        assert set(FEATURE_CODECS) == {"fp32", "fp16", "int8"}

    def test_get_codec_unknown(self):
        with pytest.raises(KeyError):
            get_codec("jpeg")

    def test_fp32_lossless(self, features):
        assert roundtrip_error(FP32_CODEC, features) == 0.0

    def test_fp16_near_lossless(self, features):
        assert roundtrip_error(FP16_CODEC, features) < 5e-3

    def test_int8_bounded_error(self, features):
        span = float(features.max() - features.min())
        assert roundtrip_error(INT8_CODEC, features) <= span / 255.0 + 1e-6

    def test_wire_bytes_ordering(self, features):
        shape = features.shape
        assert (
            INT8_CODEC.wire_bytes(shape)
            < FP16_CODEC.wire_bytes(shape)
            < FP32_CODEC.wire_bytes(shape)
        )

    def test_wire_bytes_match_encoded_length(self, features):
        for codec in FEATURE_CODECS.values():
            payload = codec.encode(features)
            assert len(payload) == codec.wire_bytes(features.shape)

    def test_decode_validates_length(self, features):
        for codec in FEATURE_CODECS.values():
            payload = codec.encode(features)
            with pytest.raises(CodecError):
                codec.decode(payload[:-1], features.shape)

    def test_int8_constant_tensor(self):
        const = np.full((1, 2, 3, 3), 1.5, dtype=np.float32)
        decoded = INT8_CODEC.decode(INT8_CODEC.encode(const), const.shape)
        np.testing.assert_allclose(decoded, const, atol=1e-6)


class TestCodecDeployment:
    def test_quantized_deployment_keeps_accuracy(self, trained_system, tiny_mnist):
        """int8 features must not change the edge's answers materially."""
        from repro.runtime import LCRSDeployment, four_g

        _, test = tiny_mnist
        fp32 = LCRSDeployment(trained_system, four_g(seed=1), feature_codec=FP32_CODEC)
        int8 = LCRSDeployment(trained_system, four_g(seed=1), feature_codec=INT8_CODEC)
        a = fp32.run_session(test.images[:60])
        b = int8.run_session(test.images[:60])
        agreement = (a.predictions == b.predictions).mean()
        assert agreement > 0.95

    def test_quantized_plan_has_smaller_miss_payload(self, trained_system):
        from repro.runtime import LCRSDeployment, four_g, TransferStep

        fp32 = LCRSDeployment(trained_system, four_g(), feature_codec=FP32_CODEC)
        int8 = LCRSDeployment(trained_system, four_g(), feature_codec=INT8_CODEC)
        fp32_upload = next(
            s for s in fp32.plan().miss_steps if isinstance(s, TransferStep) and s.upload
        )
        int8_upload = next(
            s for s in int8.plan().miss_steps if isinstance(s, TransferStep) and s.upload
        )
        assert int8_upload.num_bytes < fp32_upload.num_bytes / 3
