"""Unit tests for datasets, loaders, synthetic generators, augmentation."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    Augmenter,
    DataLoader,
    LOGO_RENDERERS,
    LogoDatasetConfig,
    SPECS,
    additive_noise,
    affine_warp,
    color_perturbation,
    generate,
    horizontal_flip,
    make_dataset,
    make_logo_dataset,
    render_china_mobile_style,
    render_fenjiu_style,
    rotate,
    translate,
    vertical_flip,
    zoom,
)
from repro.data.synthetic import class_prototypes


class TestArrayDataset:
    def test_basic_accessors(self):
        ds = ArrayDataset(np.zeros((5, 1, 4, 4)), np.arange(5) % 3)
        assert len(ds) == 5
        assert ds.num_classes == 3
        assert ds.image_shape == (1, 4, 4)
        img, label = ds[2]
        assert img.shape == (1, 4, 4) and label == 2

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 4, 4)), np.zeros(5))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 4, 4)), np.zeros(4))

    def test_subset(self):
        ds = ArrayDataset(np.arange(20).reshape(5, 1, 2, 2), np.arange(5))
        sub = ds.subset([0, 4])
        assert len(sub) == 2
        assert sub.labels.tolist() == [0, 4]

    def test_split_fractions_and_disjoint(self):
        ds = ArrayDataset(np.random.randn(100, 1, 2, 2), np.arange(100))
        a, b = ds.split(0.8, rng=np.random.default_rng(0))
        assert len(a) == 80 and len(b) == 20
        assert set(a.labels.tolist()).isdisjoint(b.labels.tolist())

    def test_split_rejects_bad_fraction(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            ds.split(1.5)


class TestDataLoader:
    def make(self, n=10, batch=4, **kw):
        ds = ArrayDataset(np.arange(n * 4).reshape(n, 1, 2, 2), np.arange(n))
        return DataLoader(ds, batch_size=batch, **kw)

    def test_batch_count(self):
        assert len(self.make(10, 4)) == 3
        assert len(self.make(10, 4, drop_last=True)) == 2

    def test_batches_cover_dataset_unshuffled(self):
        loader = self.make(10, 4, shuffle=False)
        labels = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(labels, np.arange(10))

    def test_shuffle_is_seeded(self):
        a = [y.tolist() for _, y in self.make(10, 4, shuffle=True, seed=3)]
        b = [y.tolist() for _, y in self.make(10, 4, shuffle=True, seed=3)]
        assert a == b

    def test_shuffle_changes_across_epochs(self):
        loader = self.make(20, 20, shuffle=True, seed=0)
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second

    def test_rejects_bad_batch_size(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)

    def test_drop_last_yields_full_batches_only(self):
        loader = self.make(10, 4, drop_last=True, shuffle=False)
        sizes = [len(y) for _, y in loader]
        assert sizes == [4, 4]


class TestAffineOps:
    def test_rotate_zero_is_identity(self):
        img = np.random.rand(3, 9, 9).astype(np.float32)
        np.testing.assert_allclose(rotate(img, 0.0), img, atol=1e-5)

    def test_rotate_360_is_identity(self):
        img = np.random.rand(1, 9, 9).astype(np.float32)
        np.testing.assert_allclose(rotate(img, 360.0), img, atol=1e-4)

    def test_rotate_90_moves_corner_mass(self):
        img = np.zeros((1, 7, 7), dtype=np.float32)
        img[0, 0, 3] = 1.0  # top-center
        out = rotate(img, 90.0)
        # Counter-clockwise: top-center moves to the left-center column.
        assert out[0, 3, 0] > 0.5

    def test_translate_shifts_content(self):
        img = np.zeros((1, 5, 5), dtype=np.float32)
        img[0, 2, 2] = 1.0
        out = translate(img, dy=1, dx=0)
        assert out[0, 3, 2] > 0.9

    def test_zoom_preserves_center(self):
        img = np.zeros((1, 9, 9), dtype=np.float32)
        img[0, 4, 4] = 1.0
        out = zoom(img, 1.5)
        assert out[0, 4, 4] > 0.5

    def test_zoom_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zoom(np.zeros((1, 4, 4), dtype=np.float32), 0.0)

    def test_flips_are_involutions(self):
        img = np.random.rand(3, 6, 6).astype(np.float32)
        np.testing.assert_array_equal(horizontal_flip(horizontal_flip(img)), img)
        np.testing.assert_array_equal(vertical_flip(vertical_flip(img)), img)

    def test_affine_warp_fill_value(self):
        img = np.ones((1, 5, 5), dtype=np.float32)
        out = translate(img, dy=0, dx=3, fill=0.0)
        assert out[0, 2, 0] == 0.0


class TestColorAndNoise:
    def test_color_perturbation_changes_image(self):
        rng = np.random.default_rng(0)
        img = np.random.rand(3, 8, 8).astype(np.float32)
        out = color_perturbation(img, rng)
        assert out.shape == img.shape
        assert not np.allclose(out, img)

    def test_additive_noise_scale(self):
        rng = np.random.default_rng(0)
        img = np.zeros((1, 50, 50), dtype=np.float32)
        out = additive_noise(img, rng, sigma=0.5)
        assert 0.4 < out.std() < 0.6


class TestAugmenter:
    def test_preserves_shape_and_dtype(self):
        aug = Augmenter(seed=0)
        img = np.random.rand(3, 16, 16).astype(np.float32)
        out = aug(img)
        assert out.shape == img.shape
        assert out.dtype == np.float32

    def test_deterministic_given_seed(self):
        img = np.random.rand(1, 10, 10).astype(np.float32)
        a = Augmenter(seed=5)(img.copy())
        b = Augmenter(seed=5)(img.copy())
        np.testing.assert_array_equal(a, b)

    def test_disabled_ops_are_identity(self):
        aug = Augmenter(
            max_rotation=0, max_translation=0, zoom_range=(1.0, 1.0),
            allow_hflip=False, allow_vflip=False, brightness=0, contrast=0,
            channel_shift=0, noise_sigma=0, seed=0,
        )
        img = np.random.rand(1, 8, 8).astype(np.float32)
        np.testing.assert_allclose(aug(img), img, atol=1e-6)

    def test_expand_multiplies_dataset(self):
        aug = Augmenter(seed=0)
        images = np.random.rand(4, 1, 8, 8).astype(np.float32)
        labels = np.arange(4)
        out_images, out_labels = aug.expand(images, labels, copies=3)
        assert len(out_images) == 16
        np.testing.assert_array_equal(out_labels, np.tile(labels, 4))


class TestSyntheticGenerators:
    def test_all_specs_generate_correct_shapes(self):
        for name, spec in SPECS.items():
            ds = generate(spec, 20, seed=0)
            assert ds.images.shape == (20,) + spec.image_shape, name
            assert ds.labels.max() < spec.num_classes

    def test_standardized_statistics(self):
        ds = generate(SPECS["cifar10"], 200, seed=1)
        assert abs(ds.images.mean()) < 0.05
        assert abs(ds.images.std() - 1.0) < 0.05

    def test_prototypes_deterministic(self):
        a = class_prototypes(SPECS["mnist"], seed=3)
        b = class_prototypes(SPECS["mnist"], seed=3)
        np.testing.assert_array_equal(a, b)

    def test_same_seed_same_data(self):
        a = generate(SPECS["mnist"], 10, seed=5)
        b = generate(SPECS["mnist"], 10, seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_different_seed_different_data(self):
        a = generate(SPECS["mnist"], 10, seed=5)
        b = generate(SPECS["mnist"], 10, seed=6)
        assert not np.allclose(a.images, b.images)

    def test_make_dataset_train_test_disjoint_draws(self):
        train, test = make_dataset("mnist", 30, 30, seed=0)
        assert not np.allclose(train.images[:10], test.images[:10])

    def test_make_dataset_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet", 10, 10)

    def test_generate_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            generate(SPECS["mnist"], 0)

    def test_classes_are_separable(self):
        """A nearest-prototype classifier must beat chance by a wide
        margin — the class signal is real."""
        spec = SPECS["mnist"]
        ds = generate(spec, 200, seed=2)
        protos = np.stack(
            [ds.images[ds.labels == c].mean(axis=0) for c in range(spec.num_classes)]
        )
        flat = ds.images.reshape(len(ds), -1)
        pf = protos.reshape(spec.num_classes, -1)
        preds = ((flat[:, None, :] - pf[None, :, :]) ** 2).sum(axis=2).argmin(axis=1)
        assert (preds == ds.labels).mean() > 0.5


class TestLogoDatasets:
    def test_renderers_produce_valid_canvases(self):
        for name, renderer in LOGO_RENDERERS.items():
            canvas = renderer(32)
            assert canvas.shape == (3, 32, 32), name
            assert np.isfinite(canvas).all()

    def test_logos_are_distinct(self):
        cm = render_china_mobile_style(32)
        fj = render_fenjiu_style(32)
        assert np.abs(cm - fj).mean() > 0.05

    def test_make_logo_dataset_shapes_and_classes(self):
        config = LogoDatasetConfig(base_variants=4, augmented_copies=2, seed=1)
        train, test = make_logo_dataset(config)
        assert train.num_classes == 3  # two logos + background
        assert train.image_shape == (3, 32, 32)
        total = len(train) + len(test)
        assert total == 3 * 4 * 3  # classes * variants * (1 + copies)

    def test_unknown_logo_rejected(self):
        with pytest.raises(KeyError):
            make_logo_dataset(LogoDatasetConfig(classes=("pepsi",)))

    def test_deterministic(self):
        config = LogoDatasetConfig(base_variants=3, augmented_copies=1, seed=9)
        a_train, _ = make_logo_dataset(config)
        b_train, _ = make_logo_dataset(config)
        np.testing.assert_array_equal(a_train.images, b_train.images)
