"""Feature-codec ablation: miss-path payload vs accuracy.

Quantizing the conv1 feature map on the wire (fp32 → fp16 → int8) cuts
the collaborative path's upload by 2–4× — attacking the transfer term
the paper identifies as the cost of collaboration — while the edge's
answers barely move.  This extends the paper's fp32-only design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCRS, JointTrainingConfig
from repro.data import make_dataset
from repro.experiments.reporting import render_table
from repro.runtime import (
    FEATURE_CODECS,
    LCRSDeployment,
    TransferStep,
    four_g,
)

pytestmark = pytest.mark.slow  # trains systems from scratch


def _run_codec_study():
    train, test = make_dataset("mnist", 700, 250, seed=5)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(epochs=5, lr_main=2e-3, seed=5),
        dataset_name="mnist",
        seed=5,
    )
    system.fit(train)
    system.calibrate(test)
    # Pin tau at the 20th percentile of observed entropies so ~80% of
    # samples take the collaborative (codec-exercising) path — a
    # well-trained branch would otherwise exit everything locally and
    # leave the codecs untested.
    from dataclasses import replace

    from repro.core import branch_entropies

    entropies, _, _ = branch_entropies(system.model, test.images)
    system.calibration = replace(
        system.calibration, threshold=float(np.quantile(entropies, 0.2))
    )

    rows = {}
    for name, codec in FEATURE_CODECS.items():
        deployment = LCRSDeployment(system, four_g(seed=5), feature_codec=codec)
        session = deployment.run_session(test.images)
        upload = next(
            s
            for s in deployment.plan().miss_steps
            if isinstance(s, TransferStep) and s.upload
        )
        rows[name] = {
            "bytes": upload.num_bytes,
            "accuracy": session.accuracy(test.labels),
            "exit_rate": session.exit_rate,
            "mean_ms": session.mean_latency_ms,
        }
    return rows


def test_feature_codec_ablation(benchmark, announce):
    rows = benchmark.pedantic(_run_codec_study, rounds=1, iterations=1)
    announce(
        render_table(
            ["codec", "miss payload(B)", "accuracy", "mean(ms)"],
            [
                [name, f"{r['bytes']:.0f}", f"{r['accuracy']:.3f}", f"{r['mean_ms']:.1f}"]
                for name, r in rows.items()
            ],
            title="feature-codec ablation (lenet/mnist, strict tau)",
        )
    )

    # Payload ordering is structural.
    assert rows["int8"]["bytes"] < rows["fp16"]["bytes"] < rows["fp32"]["bytes"]
    # Quantization must not cost meaningful accuracy.
    assert rows["int8"]["accuracy"] >= rows["fp32"]["accuracy"] - 0.02
    assert rows["fp16"]["accuracy"] >= rows["fp32"]["accuracy"] - 0.005


def test_benchmark_int8_roundtrip(benchmark):
    from repro.runtime import INT8_CODEC

    rng = np.random.default_rng(0)
    features = np.abs(rng.standard_normal((8, 32, 16, 16)).astype(np.float32))
    benchmark(lambda: INT8_CODEC.decode(INT8_CODEC.encode(features), features.shape))
