"""Standalone browser-side inference engine for ``.lcrs`` models.

This is the reproduction of the paper's JavaScript/WASM library
(Figure 3): an interpreter that executes the browser bundle *from the
serialized bytes alone* — no training-framework objects — using the
integer XNOR + popcount kernels a WASM implementation would use for the
binary layers.  The paper validates its library against PyTorch outputs;
:mod:`repro.wasm.validation` performs the same cross-check against the
training framework.

Zero padding makes binarized convolution inputs ternary {−1, 0, +1}, so
activations are packed as value+mask bitplane pairs; see
:mod:`repro.wasm.bitpack` for the masked popcount dot product.

Compilation is *geometry-complete*: the bundle's input shape fixes every
layer's spatial geometry, so all data-independent artifacts — output
sizes, padding-validity mask columns and their packed bitplanes,
reshaped/unpacked weight matrices — are computed once at load time and
cached (shared across engine instances via :func:`conv_geometry`).
``forward`` does only data-dependent work per call, the same split a
WASM module makes between instantiation and invocation.  Each compiled
op carries an always-on :class:`~repro.profiling.op_counters.OpCounter`
(calls, samples, wall time, popcount traffic).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..observability.clock import now_ms
from ..profiling.op_counters import ModelCounters
from . import bitpack
from .bitpack import pack_signs, packed_dot, unpack_signs
from .model_format import ModelFormatError, ParsedModel, parse_model


@dataclass(frozen=True)
class ConvGeometry:
    """Data-independent im2col artifacts for one (shape, kernel) tuple.

    ``valid_cols``/``mbits`` describe which positions of each im2col row
    are real input (vs zero padding) for *one* sample; they are shared by
    every sample in a batch and every engine with the same layer shape.
    """

    in_channels: int
    height: int
    width: int
    kernel: int
    stride: int
    padding: int
    out_height: int
    out_width: int
    #: im2col row count per sample (``out_height · out_width``).
    rows: int
    #: im2col row length (``in_channels · kernel²``).
    row_len: int
    #: Boolean validity of each im2col position, ``(rows, row_len)``;
    #: ``None`` when there is no padding (every position valid).
    valid_cols: Optional[np.ndarray]
    #: Packed validity bitplanes, ``(rows, ceil(row_len/8))``; ``None``
    #: when there is no padding.
    mbits: Optional[np.ndarray]


class _GeometryCache:
    """Process-wide LRU geometry cache, safe for concurrent engines.

    Explicitly keyed by every parameter the artifacts depend on —
    ``(c, h, w, kernel, stride, padding)``.  The cached masks are
    independent of kernel-execution knobs (block size, ``num_threads``),
    which key the per-configuration dot stats in
    :mod:`repro.wasm.bitpack` instead.  LRU-bounded so long multi-tenant
    runs sweeping many model geometries cannot grow it without bound.

    All access — lookup, stats increments, insertion, and the eviction
    loop — happens under one lock: concurrent misses used to lose
    hit/miss counts and could double-pop the LRU (``KeyError``).  The
    artifact *computation* runs outside the lock (it is pure and
    deterministic, so a racing duplicate build is wasted work, never a
    wrong answer); insertion re-checks the key and keeps the first
    build, counting the loser's work as a miss that inserted nothing.
    """

    def __init__(self, maxsize: int) -> None:
        self._lock = threading.Lock()
        self._cache: "OrderedDict[tuple[int, int, int, int, int, int], ConvGeometry]" = (
            OrderedDict()
        )
        self.maxsize = maxsize
        self._stats = {"hits": 0, "misses": 0, "evictions": 0}

    def lookup(self, key) -> Optional[ConvGeometry]:
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._stats["hits"] += 1
                self._cache.move_to_end(key)
            else:
                self._stats["misses"] += 1
            return cached

    def insert(self, key, geometry: ConvGeometry) -> ConvGeometry:
        with self._lock:
            existing = self._cache.get(key)
            if existing is not None:
                return existing
            self._cache[key] = geometry
            while len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
                self._stats["evictions"] += 1
            return geometry

    def info(self) -> dict[str, int]:
        with self._lock:
            return {"size": len(self._cache), "maxsize": self.maxsize, **self._stats}

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._stats.update(hits=0, misses=0, evictions=0)


_GEOMETRY_CACHE = _GeometryCache(maxsize=128)


def geometry_cache_info() -> dict[str, int]:
    """Hit/miss/eviction counts and occupancy of the geometry cache."""
    return _GEOMETRY_CACHE.info()


def clear_geometry_cache() -> None:
    """Drop all cached geometries and reset the cache statistics."""
    _GEOMETRY_CACHE.clear()


def conv_geometry(
    c: int, h: int, w: int, kernel: int, stride: int, padding: int
) -> ConvGeometry:
    """Cached geometry artifacts for an im2col with the given parameters."""
    key = (c, h, w, kernel, stride, padding)
    cached = _GEOMETRY_CACHE.lookup(key)
    if cached is not None:
        return cached

    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    rows = oh * ow
    row_len = c * kernel * kernel

    valid_cols: Optional[np.ndarray] = None
    mbits: Optional[np.ndarray] = None
    if padding > 0:
        valid = np.zeros((1, c, h + 2 * padding, w + 2 * padding), dtype=bool)
        valid[:, :, padding : padding + h, padding : padding + w] = True
        valid_cols = _unfold(np.ascontiguousarray(valid), kernel, stride, oh, ow)
        valid_cols.setflags(write=False)
        mbits = np.packbits(valid_cols.astype(np.uint8), axis=1)
        mbits.setflags(write=False)

    geometry = ConvGeometry(
        in_channels=c,
        height=h,
        width=w,
        kernel=kernel,
        stride=stride,
        padding=padding,
        out_height=oh,
        out_width=ow,
        rows=rows,
        row_len=row_len,
        valid_cols=valid_cols,
        mbits=mbits,
    )
    return _GEOMETRY_CACHE.insert(key, geometry)


def _unfold(a: np.ndarray, kernel: int, stride: int, oh: int, ow: int) -> np.ndarray:
    """Extract sliding windows of an NCHW array into im2col rows."""
    n, c = a.shape[:2]
    s0, s1, s2, s3 = a.strides
    win = np.lib.stride_tricks.as_strided(
        a,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    return win.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kernel * kernel)


def _im2col(x: np.ndarray, geom: ConvGeometry) -> np.ndarray:
    """im2col an NCHW batch using precomputed geometry.

    Padded positions come out as 0.0; ``geom.valid_cols`` tells which
    positions those are without any per-call mask computation.
    """
    if geom.padding > 0:
        pad = geom.padding
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    return _unfold(x, geom.kernel, geom.stride, geom.out_height, geom.out_width)


def _im2col_with_mask(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """im2col returning both columns and a padding-validity mask.

    Compatibility wrapper over the cached-geometry path; the compiled
    ops use :func:`conv_geometry` + :func:`_im2col` directly.
    """
    n, c, h, w = x.shape
    geom = conv_geometry(c, h, w, kernel, stride, padding)
    cols = _im2col(x, geom)
    if geom.valid_cols is None:
        valid = np.ones((n * geom.rows, geom.row_len), dtype=bool)
    else:
        valid = np.broadcast_to(
            geom.valid_cols[None], (n, geom.rows, geom.row_len)
        ).reshape(n * geom.rows, geom.row_len)
    return cols, valid, geom.out_height, geom.out_width


class WasmModel:
    """Executable ``.lcrs`` model.

    The constructor compiles the parsed layer specs into a list of
    numpy kernels, threading the (batch-free) activation shape through
    the builders so every geometry-dependent artifact — output sizes,
    validity-mask bitplanes, reshaped weight matrices — exists before
    the first :meth:`forward` call.  Binary layers keep their packed
    weight bitplanes resident, exactly as the WASM module would keep
    them in linear memory.
    """

    def __init__(self, parsed: ParsedModel, num_threads: int = 1) -> None:
        num_threads = int(num_threads)
        if num_threads < 1:
            raise ValueError("num_threads must be at least 1")
        self.input_shape = parsed.input_shape
        self.metadata = parsed.metadata
        #: Intra-op threads for the XNOR-popcount kernels (mutable knob;
        #: the compiled binary ops read it per call).  Results are
        #: bit-identical for every value — see
        #: :func:`repro.wasm.bitpack.packed_dot`.
        self.num_threads = num_threads
        #: Retained layer specs: the trace-compiler in
        #: :mod:`repro.wasm.plan` re-reads them to build fused plans.
        self.parsed = parsed
        self._ops: list[Callable[[np.ndarray], np.ndarray]] = []
        self._build(parsed)
        self.counters = ModelCounters.for_kinds(
            [spec["type"] for spec in parsed.layers]
        )
        # Compiled-plan cache: capacity (rounded up to a power of two)
        # → CompiledPlan, or None when compilation/verification failed
        # for that capacity (so the fallback decision is cached too).
        # The lock covers lookup, compile, and insert: concurrent first
        # use of a capacity compiles exactly once (later threads block
        # briefly and reuse the winner's plan).
        self._plan_cache: "OrderedDict[int, object]" = OrderedDict()
        self._plan_cache_maxsize = 4
        self._plan_cache_stats = {"hits": 0, "misses": 0, "failures": 0}
        self._plan_cache_lock = threading.Lock()

    @classmethod
    def load(cls, payload: bytes, num_threads: int = 1) -> "WasmModel":
        return cls(parse_model(payload), num_threads=num_threads)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _build(self, parsed: ParsedModel) -> None:
        shape = tuple(int(d) for d in parsed.input_shape)
        for spec in parsed.layers:
            kind = spec["type"]
            builder = getattr(self, f"_op_{kind}", None)
            if builder is None:
                raise ModelFormatError(f"interpreter has no kernel for {kind!r}")
            op, shape = builder(spec, parsed, shape)
            self._ops.append(op)

    @staticmethod
    def _conv_geom(spec: dict, in_shape: tuple[int, ...]) -> ConvGeometry:
        if len(in_shape) != 3:
            raise ModelFormatError(
                f"{spec['type']} expects a CHW input, got shape {in_shape}"
            )
        c, h, w = in_shape
        return conv_geometry(
            c, h, w, int(spec["kernel_size"]), int(spec["stride"]), int(spec["padding"])
        )

    # -- float layers ---------------------------------------------------
    def _op_conv2d(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        weight = parsed.buffer(spec["weight"]).astype(np.float32)
        bias = parsed.buffer(spec["bias"]).astype(np.float32) if "bias" in spec else None
        oc = int(spec["out_channels"])
        geom = self._conv_geom(spec, in_shape)
        w_mat_t = np.ascontiguousarray(weight.reshape(oc, -1).T)

        def op(x: np.ndarray) -> np.ndarray:
            n = x.shape[0]
            out = _im2col(x, geom) @ w_mat_t
            if bias is not None:
                out += bias
            return out.reshape(n, geom.out_height, geom.out_width, oc).transpose(
                0, 3, 1, 2
            )

        return op, (oc, geom.out_height, geom.out_width)

    def _op_linear(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        weight = parsed.buffer(spec["weight"]).astype(np.float32)
        bias = parsed.buffer(spec["bias"]).astype(np.float32) if "bias" in spec else None
        w_t = np.ascontiguousarray(weight.T)

        def op(x: np.ndarray) -> np.ndarray:
            out = x @ w_t
            return out + bias if bias is not None else out

        return op, (int(spec["out_features"]),)

    def _op_batch_norm(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        gamma = parsed.buffer(spec["gamma"]).astype(np.float32)
        beta = parsed.buffer(spec["beta"]).astype(np.float32)
        mean = parsed.buffer(spec["running_mean"]).astype(np.float32)
        var = parsed.buffer(spec["running_var"]).astype(np.float32)
        eps = float(spec["eps"])
        scale = gamma / np.sqrt(var + eps)
        shift = beta - mean * scale
        scale_nchw = scale[None, :, None, None]
        shift_nchw = shift[None, :, None, None]

        def op(x: np.ndarray) -> np.ndarray:
            if x.ndim == 4:
                return x * scale_nchw + shift_nchw
            return x * scale + shift

        return op, in_shape

    def _op_relu(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        return (lambda x: np.maximum(x, 0.0)), in_shape

    def _op_flatten(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        flat = int(np.prod(in_shape))
        return (lambda x: x.reshape(x.shape[0], -1)), (flat,)

    def _op_max_pool2d(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        k = int(spec["kernel_size"])
        stride = int(spec["stride"])
        c, h, w = in_shape
        geom = conv_geometry(c, h, w, k, stride, 0)
        oh, ow = geom.out_height, geom.out_width

        if stride == k and h % k == 0 and w % k == 0:
            # Non-overlapping windows tile the input exactly: pool as an
            # elementwise maximum over the k² window offsets — strided
            # views, no im2col materialisation, one pass per offset.
            offsets = [(di, dj) for di in range(k) for dj in range(k)]

            def op(x: np.ndarray) -> np.ndarray:
                out = np.ascontiguousarray(x[:, :, 0::k, 0::k])
                for di, dj in offsets[1:]:
                    np.maximum(out, x[:, :, di::k, dj::k], out=out)
                return out

        else:

            def op(x: np.ndarray) -> np.ndarray:
                n = x.shape[0]
                cols = _im2col(x, geom).reshape(-1, c, k * k)
                return cols.max(axis=2).reshape(n, oh, ow, c).transpose(0, 3, 1, 2)

        return op, (c, oh, ow)

    def _op_global_avg_pool2d(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        return (lambda x: x.mean(axis=(2, 3))), (in_shape[0],)

    # -- binary layers ----------------------------------------------------
    def _op_binary_conv2d(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        packed_w = parsed.buffer(spec["weight_bits"]).astype(np.uint8)
        alpha = parsed.buffer(spec["alpha"]).astype(np.float32)
        bias = parsed.buffer(spec["bias"]).astype(np.float32) if "bias" in spec else None
        oc = int(spec["out_channels"])
        binarize_input = bool(spec["binarize_input"])
        geom = self._conv_geom(spec, in_shape)
        out_shape = (oc, geom.out_height, geom.out_width)
        alpha_row = alpha[None, :]

        if binarize_input:
            bit_length = geom.row_len

            def op(x: np.ndarray) -> np.ndarray:
                n = x.shape[0]
                # One unfold serves both Eq. 4 factors: the K sub-tensor
                # factor is the window mean of mean_c|x|, which (uniform
                # weights) equals the row mean of |columns| — padded
                # positions contribute their true zeros.
                cols = _im2col(x, geom)
                kfac = np.abs(cols).mean(axis=1)
                bits = cols >= 0  # sign(0) = +1, as in training sign_ste
                if geom.valid_cols is not None:
                    bits = bits.reshape(n, geom.rows, geom.row_len)
                    bits &= geom.valid_cols[None]
                    bits = bits.reshape(n * geom.rows, geom.row_len)
                    vbits = np.packbits(bits, axis=1)
                    # The geometry mask applies cyclically across samples.
                    dots = packed_dot(
                        vbits, packed_w, mask=geom.mbits,
                        num_threads=self.num_threads,
                    )
                else:
                    vbits = np.packbits(bits, axis=1)
                    dots = packed_dot(
                        vbits, packed_w, length=bit_length,
                        num_threads=self.num_threads,
                    )
                out = dots * alpha_row * kfac[:, None]
                if bias is not None:
                    out += bias
                return (
                    out.reshape(n, geom.out_height, geom.out_width, oc)
                    .transpose(0, 3, 1, 2)
                    .astype(np.float32)
                )

        else:
            signs_t = np.ascontiguousarray(
                unpack_signs(packed_w, int(spec["bit_length"])).T
            )

            def op(x: np.ndarray) -> np.ndarray:
                n = x.shape[0]
                out = (_im2col(x, geom) @ signs_t) * alpha_row
                if bias is not None:
                    out += bias
                return (
                    out.reshape(n, geom.out_height, geom.out_width, oc)
                    .transpose(0, 3, 1, 2)
                    .astype(np.float32)
                )

        return op, out_shape

    def _op_binary_linear(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        packed_w = parsed.buffer(spec["weight_bits"]).astype(np.uint8)
        alpha = parsed.buffer(spec["alpha"]).astype(np.float32)
        bias = parsed.buffer(spec["bias"]).astype(np.float32) if "bias" in spec else None
        bit_length = int(spec["bit_length"])
        binarize_input = bool(spec["binarize_input"])
        alpha_row = alpha[None, :]

        if binarize_input:

            def op(x: np.ndarray) -> np.ndarray:
                beta = np.abs(x).mean(axis=1, keepdims=True)
                vbits = np.packbits((x >= 0), axis=1)
                dots = packed_dot(
                    vbits, packed_w, length=bit_length,
                    num_threads=self.num_threads,
                )
                out = dots * alpha_row * beta
                if bias is not None:
                    out += bias
                return out.astype(np.float32)

        else:
            signs_t = np.ascontiguousarray(unpack_signs(packed_w, bit_length).T)

            def op(x: np.ndarray) -> np.ndarray:
                out = (x @ signs_t) * alpha_row
                if bias is not None:
                    out += bias
                return out.astype(np.float32)

        return op, (int(spec["out_features"]),)

    def _op_base_fold(
        self, spec: dict, parsed: ParsedModel, in_shape: tuple[int, ...]
    ) -> tuple[Callable, tuple[int, ...]]:
        """Sum the K base groups of a widened ABC-Net binary layer.

        The preceding binary layer carries K base sign-planes stacked
        base-major along its output axis; this op reshapes the widened
        activation to ``(n, K, ...)`` and sums over the base axis,
        recovering ``Σ_k α_k·(B_k ⊛ x̃)`` — plus the layer bias, which
        serialization relocates here so it is added once, not K times.
        """
        groups = int(spec["groups"])
        if groups < 1:
            raise ModelFormatError("base_fold groups must be at least 1")
        bias = parsed.buffer(spec["bias"]).astype(np.float32) if "bias" in spec else None
        if len(in_shape) == 3:
            kc, h, w = in_shape
            if kc % groups:
                raise ModelFormatError(
                    f"base_fold: {kc} channels not divisible by {groups} groups"
                )
            oc = kc // groups
            bias_nchw = bias[None, :, None, None] if bias is not None else None

            def op(x: np.ndarray) -> np.ndarray:
                n = x.shape[0]
                out = x.reshape(n, groups, oc, h, w).sum(axis=1)
                if bias_nchw is not None:
                    out = out + bias_nchw
                return out.astype(np.float32)

            return op, (oc, h, w)

        if len(in_shape) == 1:
            kf = in_shape[0]
            if kf % groups:
                raise ModelFormatError(
                    f"base_fold: {kf} features not divisible by {groups} groups"
                )
            f = kf // groups

            def op(x: np.ndarray) -> np.ndarray:
                n = x.shape[0]
                out = x.reshape(n, groups, f).sum(axis=1)
                if bias is not None:
                    out = out + bias
                return out.astype(np.float32)

            return op, (f,)

        raise ModelFormatError(
            f"base_fold expects a CHW or flat input, got shape {in_shape}"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full bundle on an NCHW float32 batch."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        expected = tuple(self.input_shape)
        if tuple(x.shape[1:]) != expected:
            raise ValueError(f"expected input shape (N, {expected}), got {x.shape}")
        batch = x.shape[0]
        for op, counter in zip(self._ops, self.counters.ops):
            # Attribution reads the *calling thread's* popcount tally:
            # a delta of the process-global total would credit this op
            # with whatever concurrent engines popcounted meanwhile.
            pop_before = bitpack.thread_bytes_popcounted()
            t0 = now_ms()
            x = op(x)
            counter.record(
                samples=batch,
                wall_ms=now_ms() - t0,
                bytes_popcounted=bitpack.thread_bytes_popcounted() - pop_before,
            )
        return x

    __call__ = forward

    # ------------------------------------------------------------------
    # Compiled plans (record-once / replay-many fast path)
    # ------------------------------------------------------------------
    def plan_for(self, batch_size: int):
        """The compiled plan serving batches of up to ``batch_size``.

        The cache key is the capacity rounded up to a power of two, so a
        session's ragged tail chunks reuse the full-chunk plan (replay
        slices every arena buffer to the live batch).  Returns ``None``
        when compilation or bit-identity verification failed — callers
        fall back to :meth:`forward`, which stays the reference path.
        """
        from .plan import compile_wasm_plan

        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        capacity = 1
        while capacity < batch_size:
            capacity *= 2
        with self._plan_cache_lock:
            cached = self._plan_cache.get(capacity, _PLAN_UNSET)
            if cached is not _PLAN_UNSET:
                self._plan_cache_stats["hits"] += 1
                self._plan_cache.move_to_end(capacity)
                return cached
            self._plan_cache_stats["misses"] += 1
            try:
                plan = compile_wasm_plan(self, capacity)
            except Exception:
                plan = None
            if plan is None:
                self._plan_cache_stats["failures"] += 1
            self._plan_cache[capacity] = plan
            while len(self._plan_cache) > self._plan_cache_maxsize:
                self._plan_cache.popitem(last=False)
            return plan

    def forward_planned(
        self,
        x: np.ndarray,
        *,
        recorder=None,
        trace_id: str = "",
        track: str = "browser",
    ) -> np.ndarray:
        """Run via the compiled plan, falling back to :meth:`forward`.

        Bit-identical to :meth:`forward` by construction: every plan is
        probe-verified against the interpreter at compile time, and any
        model the compiler cannot handle transparently falls back.
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        plan = self.plan_for(max(len(x), 1))
        if plan is None:
            return self.forward(x)
        return plan.execute(x, recorder=recorder, trace_id=trace_id, track=track)

    def plan_cache_info(self) -> dict[str, object]:
        """Occupancy and hit/miss/failure counts of the plan cache."""
        with self._plan_cache_lock:
            return {
                "size": len(self._plan_cache),
                "maxsize": self._plan_cache_maxsize,
                "capacities": list(self._plan_cache.keys()),
                **self._plan_cache_stats,
            }

    def clear_plan_cache(self) -> None:
        with self._plan_cache_lock:
            self._plan_cache.clear()
            self._plan_cache_stats.update(hits=0, misses=0, failures=0)

    def reset_counters(self) -> None:
        self.counters.reset()

    @property
    def num_ops(self) -> int:
        return len(self._ops)


#: Sentinel distinguishing "never compiled" from a cached failure.
_PLAN_UNSET = object()
