"""LCRS — Lightweight Collaborative Recognition System.

A full reproduction of "A Lightweight Collaborative Recognition System
with Binary Convolutional Neural Network for Mobile Web Augmented
Reality" (Huang et al., ICDCS 2019), built on a from-scratch numpy
deep-learning substrate.

Package map
-----------
``repro.nn``         autograd engine, layers, XNOR binary layers, losses
``repro.optim``      SGD / Adam, LR schedules
``repro.data``       datasets, loaders, synthetic generators, augmentation
``repro.models``     LeNet / AlexNet / ResNet18 / VGG16 main branches
``repro.core``       the contribution: composite net, joint training,
                     entropy exit policy, collaborative inference
``repro.wasm``       browser library analog: .lcrs format + bit-packed
                     XNOR interpreter + validation
``repro.profiling``  per-layer FLOPs / bytes / activation sizes
``repro.runtime``    device profiles, 4G link model, latency engine,
                     deployed browser/edge sessions
``repro.baselines``  Neurosurgeon, Edgent, mobile-only, edge-only
``repro.webar``      scan→recognize→render AR pipeline and case studies
``repro.experiments``  harnesses that regenerate every paper table/figure
``repro.metrics``    confusion/PRF1, calibration, exit risk–coverage
``repro.cli``        ``python -m repro train/evaluate/export/study``

Quickstart
----------
>>> from repro.core import LCRS, JointTrainingConfig
>>> from repro.data import make_dataset
>>> train, test = make_dataset("mnist", 2000, 500)           # doctest: +SKIP
>>> system = LCRS.build("lenet", train)                      # doctest: +SKIP
>>> system.fit(train, test)                                  # doctest: +SKIP
>>> system.calibrate(test)                                   # doctest: +SKIP
>>> print(system.report(test))                               # doctest: +SKIP
"""

__version__ = "1.0.0"

from . import (
    baselines,
    core,
    data,
    metrics,
    models,
    nn,
    optim,
    profiling,
    runtime,
    wasm,
    webar,
)

__all__ = [
    "__version__",
    "baselines",
    "core",
    "data",
    "metrics",
    "models",
    "nn",
    "optim",
    "profiling",
    "runtime",
    "wasm",
    "webar",
]
