"""Closed-loop adaptive-τ benchmark → ``BENCH_adaptive.json``.

Drives :func:`repro.experiments.run_adaptive_tau`: an arrival-rate
sweep where every session replays the same overload→drain entropy
stream against a one-shard fleet, once open-loop (the static calibrated
τ) and once closed-loop (the :class:`~repro.runtime.tau_control
.TauController` relief valve over the shard's windowed p99 queue wait),
with a 3-base ABC-Net branch so the controller also has an accuracy
tier to spend.

Headline (the committed performance contract, see
``benchmarks/bench_check.py``): at the heaviest arrival rate the static
fleet must shed at least 10% of its edge admission attempts while the
closed loop sheds none, holds the p99 queue wait, and gives up only a
bounded slice of accuracy for it.

Standalone — run it directly, not under pytest::

    PYTHONPATH=src python benchmarks/bench_tau.py

Results land in ``BENCH_adaptive.json`` at the repo root.  Fleet time
is *simulated* (deterministic for the fixed seed); only the platform
section is machine-dependent.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_adaptive.json"

SESSION_LEVELS = (2, 4, 8)
ROUNDS = 12
BATCH_SIZE = 4
NUM_BASES = 3
QUEUE_CAPACITY = 24
NUM_WORKERS = 1
SEED = 0


def _build_system():
    from repro.core import LCRS, JointTrainingConfig
    from repro.data import make_dataset

    train, test = make_dataset("mnist", 600, 200, seed=7)
    system = LCRS.build(
        "lenet",
        train,
        training_config=JointTrainingConfig(
            epochs=4, batch_size=64, lr_main=2e-3, seed=0
        ),
        dataset_name="mnist",
        seed=0,
    )
    system.fit(train)
    system.calibrate(test)
    return system, test


def bench_tau() -> dict:
    from repro.experiments import run_adaptive_tau

    system, test = _build_system()
    sweep = run_adaptive_tau(
        system,
        test.images,
        test.labels,
        session_levels=SESSION_LEVELS,
        rounds=ROUNDS,
        batch_size=BATCH_SIZE,
        num_bases=NUM_BASES,
        queue_capacity=QUEUE_CAPACITY,
        num_workers=NUM_WORKERS,
        seed=SEED,
    )
    head = sweep.headline
    wait_relief = (
        head["static_p99_wait_ms"] / head["closed_p99_wait_ms"]
        if head["closed_p99_wait_ms"] > 0
        else float("inf")
    )
    return {
        "sweep": sweep.as_dict(),
        "headline_shed_margin": head["static_shed_rate"] - head["closed_shed_rate"],
        "checks": {
            "static_shed_rate": head["static_shed_rate"],
            "closed_shed_rate": head["closed_shed_rate"],
            "wait_relief": wait_relief,
            "accuracy_retained": (
                head["closed_accuracy"] / head["static_accuracy"]
                if head.get("static_accuracy")
                else None
            ),
            "tau_adjustments": head["tau_adjustments"],
        },
    }


def main() -> None:
    record = {
        "benchmark": "adaptive_tau",
        "config": {
            "session_levels": list(SESSION_LEVELS),
            "rounds": ROUNDS,
            "batch_size": BATCH_SIZE,
            "num_bases": NUM_BASES,
            "queue_capacity": QUEUE_CAPACITY,
            "num_workers": NUM_WORKERS,
            "seed": SEED,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "results": bench_tau(),
    }
    OUTPUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    checks = record["results"]["checks"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"headline: static sheds {100 * checks['static_shed_rate']:.1f}% of "
        f"admission attempts at peak load, closed loop sheds "
        f"{100 * checks['closed_shed_rate']:.1f}%; p99 queue wait relieved "
        f"{checks['wait_relief']:.1f}x; accuracy retained "
        f"{100 * (checks['accuracy_retained'] or 0):.1f}%"
    )


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
